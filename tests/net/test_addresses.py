"""Unit and property tests for IPv4 addresses and prefixes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net import AddressError, IPv4Address, Prefix


class TestIPv4Address:
    def test_parse_dotted_quad(self):
        assert IPv4Address("10.0.0.1").value == (10 << 24) | 1

    def test_round_trip_string(self):
        assert str(IPv4Address("192.168.1.254")) == "192.168.1.254"

    def test_from_int(self):
        assert str(IPv4Address(0x0A000001)) == "10.0.0.1"

    def test_copy_constructor(self):
        original = IPv4Address("1.2.3.4")
        assert IPv4Address(original) == original

    def test_equality_and_hash(self):
        assert IPv4Address("10.0.0.1") == IPv4Address(0x0A000001)
        assert hash(IPv4Address("10.0.0.1")) == hash(IPv4Address(0x0A000001))

    def test_ordering(self):
        assert IPv4Address("10.0.0.1") < IPv4Address("10.0.0.2")

    @pytest.mark.parametrize(
        "bad", ["10.0.0", "10.0.0.0.0", "256.0.0.1", "a.b.c.d", "10..0.1"]
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(AddressError):
            IPv4Address(bad)

    def test_out_of_range_int_rejected(self):
        with pytest.raises(AddressError):
            IPv4Address(2**32)
        with pytest.raises(AddressError):
            IPv4Address(-1)


class TestPrefix:
    def test_parse_with_length(self):
        prefix = Prefix.parse("10.0.0.0/24")
        assert prefix.length == 24
        assert str(prefix) == "10.0.0.0/24"

    def test_bare_address_parses_as_host_route(self):
        assert Prefix.parse("10.0.0.5").length == 32

    def test_host_bits_rejected(self):
        with pytest.raises(AddressError):
            Prefix("10.0.0.1", 24)

    def test_invalid_length_rejected(self):
        with pytest.raises(AddressError):
            Prefix("10.0.0.0", 33)
        with pytest.raises(AddressError):
            Prefix("10.0.0.0", -1)

    def test_containing_masks_host_bits(self):
        prefix = Prefix.containing("10.0.0.77", 24)
        assert str(prefix) == "10.0.0.0/24"
        assert prefix.contains("10.0.0.77")

    def test_contains_boundaries(self):
        prefix = Prefix.parse("10.0.0.0/30")
        assert prefix.contains("10.0.0.0")
        assert prefix.contains("10.0.0.3")
        assert not prefix.contains("10.0.0.4")

    def test_contains_prefix(self):
        outer = Prefix.parse("10.0.0.0/16")
        inner = Prefix.parse("10.0.5.0/24")
        assert outer.contains_prefix(inner)
        assert not inner.contains_prefix(outer)
        assert outer.contains_prefix(outer)

    def test_default_route_contains_everything(self):
        default = Prefix.parse("0.0.0.0/0")
        assert default.contains("255.255.255.255")
        assert default.contains("0.0.0.0")

    def test_num_addresses(self):
        assert Prefix.parse("10.0.0.0/30").num_addresses == 4
        assert Prefix.parse("10.0.0.1/32").num_addresses == 1

    def test_addresses_iteration(self):
        addresses = list(Prefix.parse("10.0.0.0/30").addresses())
        assert [str(a) for a in addresses] == [
            "10.0.0.0",
            "10.0.0.1",
            "10.0.0.2",
            "10.0.0.3",
        ]

    def test_equality_and_hash(self):
        assert Prefix.parse("10.0.0.0/24") == Prefix.parse("10.0.0.0/24")
        assert Prefix.parse("10.0.0.0/24") != Prefix.parse("10.0.0.0/25")
        assert len({Prefix.parse("10.0.0.0/24"), Prefix.parse("10.0.0.0/24")}) == 1


addresses = st.integers(min_value=0, max_value=2**32 - 1)
lengths = st.integers(min_value=0, max_value=32)


@given(value=addresses)
def test_address_string_round_trip(value):
    address = IPv4Address(value)
    assert IPv4Address(str(address)) == address


@given(value=addresses, length=lengths)
def test_prefix_contains_its_own_addresses(value, length):
    prefix = Prefix.containing(value, length)
    assert prefix.contains(IPv4Address(value))


@given(value=addresses, length=lengths)
def test_prefix_containing_is_idempotent(value, length):
    prefix = Prefix.containing(value, length)
    again = Prefix.containing(prefix.network, length)
    assert prefix == again


@given(value=addresses, short=lengths, long=lengths)
def test_shorter_prefix_contains_longer(value, short, long):
    if short > long:
        short, long = long, short
    outer = Prefix.containing(value, short)
    inner = Prefix.containing(value, long)
    assert outer.contains_prefix(inner)
