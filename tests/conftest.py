"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.sim import RandomStreams, Simulator
from repro.testing import TwoHostTestbed


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def streams() -> RandomStreams:
    return RandomStreams(1234)


@pytest.fixture
def testbed() -> TwoHostTestbed:
    """A lossless two-host fabric with a 100 ms RTT and fast trunk."""
    bed = TwoHostTestbed(rtt=0.100, bandwidth_bps=1e9)
    bed.serve_echo()
    return bed
