"""Agent-side resilience policies under injected tool and path faults."""

from repro.core import RiptideAgent, RiptideConfig
from repro.net import Prefix
from repro.net.loss import BernoulliLoss
from repro.obs.trace import EventType
from repro.tcp import TcpConfig
from repro.testing import TwoHostTestbed, request_response

RTT = 0.100


def make_testbed():
    bed = TwoHostTestbed(
        rtt=RTT,
        client_config=TcpConfig(default_initrwnd=300),
        server_config=TcpConfig(default_initrwnd=300),
    )
    bed.serve_echo()
    return bed


class TestToolRetry:
    def test_install_retries_after_ip_fault_clears(self):
        bed = make_testbed()
        agent = RiptideAgent(
            bed.server,
            RiptideConfig(
                update_interval=5.0,
                tool_retry_limit=3,
                tool_retry_backoff=0.5,
            ),
        )
        request_response(bed, response_bytes=500_000)  # grow the window
        bed.server.ip.set_fault()
        agent.start()  # first tick in 5s fails its install
        start = bed.sim.now
        bed.sim.run(until=start + 5.2)
        assert agent.stats.tool_errors >= 1
        key = Prefix.host(bed.client.address)
        assert bed.server.ip.route_get(bed.client.address) is None
        bed.server.ip.clear_fault()
        # Retry ladder fires at +0.5s; well before the next tick at 10s.
        bed.sim.run(until=start + 7.0)
        assert agent.stats.tool_retries >= 1
        route = bed.server.ip.route_get(bed.client.address)
        assert route is not None
        assert route.initcwnd == agent.learned_window_for(key)

    def test_retries_give_up_after_the_limit(self):
        bed = make_testbed()
        agent = RiptideAgent(
            bed.server,
            RiptideConfig(
                update_interval=5.0,
                tool_retry_limit=2,
                tool_retry_backoff=0.5,
            ),
        )
        request_response(bed, response_bytes=500_000)
        bed.server.ip.set_fault()
        agent.start()
        start = bed.sim.now
        # Tick at +5s, retries at +5.5s and +6.5s, then the ladder ends;
        # stop before the next tick at +10s re-runs the install path.
        bed.sim.run(until=start + 9.5)
        assert agent.stats.tool_retries == 2
        assert bed.server.ip.route_get(bed.client.address) is None
        # The next healthy tick self-heals without any retry state.
        bed.server.ip.clear_fault()
        bed.sim.run(until=start + 11.0)
        assert bed.server.ip.route_get(bed.client.address) is not None

    def test_zero_retry_limit_disables_the_ladder(self):
        bed = make_testbed()
        agent = RiptideAgent(
            bed.server,
            RiptideConfig(update_interval=5.0, tool_retry_limit=0),
        )
        request_response(bed, response_bytes=500_000)
        bed.server.ip.set_fault()
        agent.start()
        bed.sim.run(until=bed.sim.now + 9.0)
        assert agent.stats.tool_errors >= 1
        assert agent.stats.tool_retries == 0


class TestPollFailures:
    def test_agent_survives_ss_blackout(self):
        bed = make_testbed()
        agent = RiptideAgent(bed.server, RiptideConfig(update_interval=0.5))
        agent.start()
        request_response(bed, response_bytes=500_000)
        bed.server.ss.set_fault("error")
        bed.sim.run(until=bed.sim.now + 3.0)
        assert agent.running
        assert agent.stats.poll_failures >= 1
        # Learning resumes once the tool recovers.
        bed.server.ss.clear_fault()
        bed.sim.run(until=bed.sim.now + 2.0)
        assert agent.learned_window_for(Prefix.host(bed.client.address)) is not None

    def test_partial_snapshot_learns_from_what_remains(self):
        bed = make_testbed()
        agent = RiptideAgent(bed.server, RiptideConfig(update_interval=0.5))
        agent.start()
        bed.server.ss.set_fault("partial")
        request_response(bed, response_bytes=500_000)
        bed.sim.run(until=bed.sim.now + 2.0)
        # One connection, kept by the [::2] stride: learning continues.
        assert agent.learned_window_for(Prefix.host(bed.client.address)) is not None
        assert agent.running


class TestCrashRecovery:
    def test_routes_survive_crash_and_restart_self_heals(self):
        bed = make_testbed()
        agent = RiptideAgent(bed.server, RiptideConfig(update_interval=0.5))
        agent.start()
        request_response(bed, response_bytes=500_000)
        bed.sim.run(until=bed.sim.now + 2.0)
        key = Prefix.host(bed.client.address)
        learned_before = agent.learned_window_for(key)
        assert learned_before is not None
        agent.crash()
        # Process memory is gone; the kernel FIB keeps the route.
        assert agent.learned_window_for(key) is None
        route = bed.server.ip.route_get(bed.client.address)
        assert route is not None and route.initcwnd == learned_before
        agent.start()
        request_response(bed, response_bytes=500_000)
        bed.sim.run(until=bed.sim.now + 2.0)
        assert agent.learned_window_for(key) is not None
        assert agent.stats.crashes == 1


class TestSafetyGuard:
    GUARD_CONFIG = RiptideConfig(
        update_interval=0.5,
        safety_guard=True,
        guard_loss_threshold=0.10,
        guard_rtt_factor=2.0,
        guard_min_segments=10,
        guard_hold=20.0,
    )

    def _learn_big_window(self, bed, agent):
        request_response(bed, response_bytes=500_000)
        bed.sim.run(until=bed.sim.now + 2.0)
        key = Prefix.host(bed.client.address)
        learned = agent.learned_window_for(key)
        assert learned is not None and learned > 10
        return key, learned

    def test_loss_storm_trips_guard_and_reverts_to_iw10(self):
        bed = make_testbed()
        agent = RiptideAgent(bed.server, self.GUARD_CONFIG)
        agent.start()
        key, _ = self._learn_big_window(bed, agent)
        # The path turns hostile: heavy random loss on the trunk.
        bed.trunk.set_loss_override(BernoulliLoss(0.25))
        for _ in range(4):
            request_response(bed, response_bytes=120_000, deadline=5.0)
        assert agent.stats.guard_trips >= 1
        # The learned route is withdrawn: new connections fall back to
        # the kernel default initial window of 10.
        assert agent.learned_window_for(key) is None
        assert bed.server.ip.route_get(bed.client.address) is None
        assert bed.server.initcwnd_for(bed.client.address) == 10

    def test_guard_holds_destination_at_default(self):
        bed = make_testbed()
        agent = RiptideAgent(bed.server, self.GUARD_CONFIG)
        agent.start()
        key, _ = self._learn_big_window(bed, agent)
        bed.trunk.set_loss_override(BernoulliLoss(0.25))
        storm = [
            request_response(bed, response_bytes=120_000, deadline=5.0)
            for _ in range(2)
        ]
        assert agent.safety_guard.holding(key, bed.sim.now)
        # Healthy path again, but the hold pins the destination: no
        # relearning while it lasts, even with traffic flowing.  The
        # abandoned storm exchanges are torn down the way a probe client
        # would on timeout — their stalled sockets must not linger.
        bed.trunk.set_loss_override(None)
        for exchange in storm:
            exchange.socket.abort()
        request_response(bed, response_bytes=300_000, deadline=3.0)
        assert agent.learned_window_for(key) is None
        # After the hold lapses the destination can be learned again.
        bed.sim.run(until=bed.sim.now + 25.0)
        request_response(bed, response_bytes=500_000)
        bed.sim.run(until=bed.sim.now + 2.0)
        assert agent.learned_window_for(key) is not None
        totals = bed.sim.obs.trace.totals()
        assert totals[EventType.GUARD_TRIPPED] >= 1
        assert totals[EventType.GUARD_RELEASED] >= 1

    def test_guard_ignores_healthy_traffic(self):
        bed = make_testbed()
        agent = RiptideAgent(bed.server, self.GUARD_CONFIG)
        agent.start()
        self._learn_big_window(bed, agent)
        for _ in range(4):
            request_response(bed, response_bytes=120_000)
        assert agent.stats.guard_trips == 0
