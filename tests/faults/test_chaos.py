"""End-to-end chaos scenarios: Riptide must hold up under faults."""

from repro.experiments.chaos import (
    ChaosStudyConfig,
    check_expected_alert,
    run_chaos_study,
)
from repro.faults import CHAOS_SCENARIOS, get_scenario, scenario_names
from repro.faults.scenarios import ExpectedAlert
from repro.obs.slo import AlertLog, BurnRateRule

FAST = ChaosStudyConfig(warmup=8.0, duration=30.0)


class TestScenarioRegistry:
    def test_scenarios_are_registered(self):
        names = scenario_names()
        assert "chaos_lossy_agent" in names
        assert "chaos_partition" in names
        assert "chaos_flaky_tools" in names

    def test_every_scenario_builds_a_valid_schedule(self):
        for name in scenario_names():
            scenario = get_scenario(name)
            schedule = scenario.build(90.0)
            assert len(schedule) >= 1
            assert schedule.end_time <= 90.0
            assert scenario.source_pop in scenario.pop_codes
            assert scenario.target_pop in scenario.pop_codes

    def test_unknown_scenario_lists_alternatives(self):
        try:
            get_scenario("chaos_nope")
        except KeyError as error:
            assert "chaos_lossy_agent" in str(error)
        else:
            raise AssertionError("expected KeyError")

    def test_describe_covers_the_timeline(self):
        scenario = CHAOS_SCENARIOS["chaos_lossy_agent"]
        text = scenario.describe(90.0)
        assert "loss_storm" in text
        assert "agent_crash" in text


def _episodes(fired: int, resolved: int) -> tuple:
    """Hand-built retransmit_ratio episodes: fired-only plus resolved."""
    rule = BurnRateRule(
        severity="page", long_window=15.0, short_window=5.0, burn_factor=2.0
    )
    log = AlertLog()
    for index in range(fired):
        episode = log.begin(1.0, "retransmit_ratio", "page", "riptide:h", rule)
        episode.firing_at = 2.0
        if index < resolved:
            episode.resolved_at = 3.0
    return tuple(log.episodes())


class TestExpectedAlertContract:
    def test_lossy_agent_declares_fire_and_resolve_expectations(self):
        scenario = get_scenario("chaos_lossy_agent")
        by_slo = {e.slo: e for e in scenario.expected_alerts}
        assert set(by_slo) == {"retransmit_ratio", "guard_withdrawal_rate"}
        for expectation in by_slo.values():
            assert expectation.must_fire
            assert expectation.must_resolve
            assert expectation.arm == "riptide"

    def test_check_passes_when_fired_and_resolved(self):
        expectation = ExpectedAlert(slo="retransmit_ratio", must_resolve=True)
        ok, detail = check_expected_alert(expectation, _episodes(2, 1))
        assert ok
        assert "fired 2 episode(s), resolved 1" in detail

    def test_check_fails_when_never_fired(self):
        expectation = ExpectedAlert(slo="retransmit_ratio")
        ok, detail = check_expected_alert(expectation, _episodes(0, 0))
        assert not ok
        assert "never did" in detail

    def test_check_fails_when_fired_but_unresolved(self):
        expectation = ExpectedAlert(slo="retransmit_ratio", must_resolve=True)
        ok, detail = check_expected_alert(expectation, _episodes(1, 0))
        assert not ok
        assert "never resolved" in detail

    def test_check_ignores_other_slos(self):
        expectation = ExpectedAlert(slo="route_staleness")
        ok, _ = check_expected_alert(expectation, _episodes(3, 3))
        assert not ok


class TestChaosEndToEnd:
    def test_lossy_agent_scenario_riptide_holds_up(self):
        result = run_chaos_study(FAST)
        # Both arms saw the same fault schedule.
        assert result.control.faults_injected == result.riptide.faults_injected
        assert result.riptide.faults_injected >= 1
        # The resilience machinery demonstrably engaged: agents crashed,
        # polls failed, and the guard reverted hostile paths to IW10.
        assert result.riptide.crashes >= 1
        assert result.riptide.poll_failures >= 1
        assert result.riptide.guard_trips >= 1
        # Control agents never ran, so none of that happened there.
        assert result.control.crashes == 0
        assert result.control.guard_trips == 0
        # The deployment-safety verdict: Riptide still at least matches
        # the IW10 control under the storm.
        assert result.riptide_holds_up
        # The declared burn-rate alert contract holds: the loss storm
        # fires retransmit_ratio, the guard hold resolves it, and the
        # guard activity itself fires and resolves its own alert.
        assert result.alerts_ok
        for expectation, ok, detail in result.alert_assertion_results():
            assert ok, f"{expectation.slo}: {detail}"
        report = result.report()
        assert "chaos_lossy_agent" in report
        assert "PASS" in report
        assert "SLO alerts (riptide arm)" in report
        assert "expected [riptide]" in report

    def test_same_seed_is_bit_identical(self):
        first = run_chaos_study(FAST)
        second = run_chaos_study(FAST)
        assert first.riptide.guard_trips == second.riptide.guard_trips
        assert (
            first.riptide.events_processed == second.riptide.events_processed
        )
        assert first.median_gain() == second.median_gain()
