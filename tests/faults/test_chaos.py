"""End-to-end chaos scenarios: Riptide must hold up under faults."""

from repro.experiments.chaos import (
    ChaosStudyConfig,
    run_chaos_study,
)
from repro.faults import CHAOS_SCENARIOS, get_scenario, scenario_names

FAST = ChaosStudyConfig(warmup=8.0, duration=30.0)


class TestScenarioRegistry:
    def test_scenarios_are_registered(self):
        names = scenario_names()
        assert "chaos_lossy_agent" in names
        assert "chaos_partition" in names
        assert "chaos_flaky_tools" in names

    def test_every_scenario_builds_a_valid_schedule(self):
        for name in scenario_names():
            scenario = get_scenario(name)
            schedule = scenario.build(90.0)
            assert len(schedule) >= 1
            assert schedule.end_time <= 90.0
            assert scenario.source_pop in scenario.pop_codes
            assert scenario.target_pop in scenario.pop_codes

    def test_unknown_scenario_lists_alternatives(self):
        try:
            get_scenario("chaos_nope")
        except KeyError as error:
            assert "chaos_lossy_agent" in str(error)
        else:
            raise AssertionError("expected KeyError")

    def test_describe_covers_the_timeline(self):
        scenario = CHAOS_SCENARIOS["chaos_lossy_agent"]
        text = scenario.describe(90.0)
        assert "loss_storm" in text
        assert "agent_crash" in text


class TestChaosEndToEnd:
    def test_lossy_agent_scenario_riptide_holds_up(self):
        result = run_chaos_study(FAST)
        # Both arms saw the same fault schedule.
        assert result.control.faults_injected == result.riptide.faults_injected
        assert result.riptide.faults_injected >= 1
        # The resilience machinery demonstrably engaged: agents crashed,
        # polls failed, and the guard reverted hostile paths to IW10.
        assert result.riptide.crashes >= 1
        assert result.riptide.poll_failures >= 1
        assert result.riptide.guard_trips >= 1
        # Control agents never ran, so none of that happened there.
        assert result.control.crashes == 0
        assert result.control.guard_trips == 0
        # The deployment-safety verdict: Riptide still at least matches
        # the IW10 control under the storm.
        assert result.riptide_holds_up
        report = result.report()
        assert "chaos_lossy_agent" in report
        assert "PASS" in report

    def test_same_seed_is_bit_identical(self):
        first = run_chaos_study(FAST)
        second = run_chaos_study(FAST)
        assert first.riptide.guard_trips == second.riptide.guard_trips
        assert (
            first.riptide.events_processed == second.riptide.events_processed
        )
        assert first.median_gain() == second.median_gain()
