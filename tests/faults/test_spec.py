"""Validation and timeline semantics of the declarative fault specs."""

import pytest

from repro.faults import (
    AgentCrash,
    FaultSchedule,
    IpToolFault,
    LinkDegrade,
    LinkFlap,
    LossStorm,
    PollJitter,
    PopPartition,
    SsFault,
)
from repro.faults.spec import FaultSpecError


class TestSpecValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(FaultSpecError, match="time"):
            PopPartition(pop="LHR", at=-1.0, duration=5.0)

    def test_zero_duration_rejected(self):
        with pytest.raises(FaultSpecError, match="duration"):
            LinkFlap(pop_a="LHR", pop_b="JFK", at=0.0, duration=0.0)

    def test_flap_endpoints_must_differ(self):
        with pytest.raises(FaultSpecError, match="endpoints"):
            LinkFlap(pop_a="LHR", pop_b="LHR", at=0.0, duration=1.0)

    def test_degrade_must_degrade_something(self):
        with pytest.raises(FaultSpecError, match="degrades nothing"):
            LinkDegrade(pop_a="LHR", pop_b="JFK", at=0.0, duration=1.0)

    def test_degrade_bandwidth_scale_range(self):
        with pytest.raises(FaultSpecError, match="bandwidth_scale"):
            LinkDegrade(
                pop_a="LHR",
                pop_b="JFK",
                at=0.0,
                duration=1.0,
                bandwidth_scale=1.5,
            )
        with pytest.raises(FaultSpecError, match="bandwidth_scale"):
            LinkDegrade(
                pop_a="LHR",
                pop_b="JFK",
                at=0.0,
                duration=1.0,
                bandwidth_scale=0.0,
            )

    def test_storm_probability_range(self):
        with pytest.raises(FaultSpecError, match="loss_probability"):
            LossStorm(pop="JFK", at=0.0, duration=1.0, loss_probability=0.0)
        with pytest.raises(FaultSpecError, match="loss_probability"):
            LossStorm(pop="JFK", at=0.0, duration=1.0, loss_probability=1.0)

    def test_ss_fault_unknown_mode(self):
        with pytest.raises(FaultSpecError, match="unknown ss fault mode"):
            SsFault(pop="LHR", at=0.0, duration=1.0, mode="explode")

    def test_ss_fault_known_modes(self):
        for mode in ("error", "empty", "stale", "partial"):
            SsFault(pop="LHR", at=0.0, duration=1.0, mode=mode)

    def test_crash_restart_must_be_positive(self):
        with pytest.raises(FaultSpecError, match="restart_after"):
            AgentCrash(pop="LHR", at=0.0, restart_after=0.0)

    def test_crash_host_index_non_negative(self):
        with pytest.raises(FaultSpecError, match="host_index"):
            AgentCrash(pop="LHR", at=0.0, host_index=-1)

    def test_jitter_amplitude_positive(self):
        with pytest.raises(FaultSpecError, match="amplitude"):
            PollJitter(pop="LHR", at=0.0, duration=1.0, amplitude=0.0)


class TestSchedule:
    def test_rejects_non_specs(self):
        with pytest.raises(FaultSpecError, match="FaultSpec"):
            FaultSchedule(specs=("not a fault",))

    def test_end_time_covers_clearing(self):
        schedule = FaultSchedule(
            specs=(
                PopPartition(pop="LHR", at=10.0, duration=5.0),
                SsFault(pop="JFK", at=2.0, duration=20.0),
            )
        )
        assert schedule.end_time == 22.0

    def test_unrestarted_crash_contributes_injection_time_only(self):
        schedule = FaultSchedule(
            specs=(AgentCrash(pop="LHR", at=30.0, restart_after=None),)
        )
        assert schedule.end_time == 30.0
        assert schedule.specs[0].clear_at is None

    def test_timeline_sorted_by_injection_time(self):
        late = IpToolFault(pop="LHR", at=9.0, duration=1.0)
        early = PopPartition(pop="JFK", at=1.0, duration=1.0)
        schedule = FaultSchedule(specs=(late, early))
        assert schedule.timeline() == [early, late]

    def test_describe_mentions_every_fault(self):
        schedule = FaultSchedule(
            specs=(
                LinkFlap(pop_a="LHR", pop_b="JFK", at=1.0, duration=2.0),
                LossStorm(pop="JFK", at=3.0, duration=4.0),
            )
        )
        text = schedule.describe()
        assert "link_flap" in text and "loss_storm" in text

    def test_len_and_iter(self):
        specs = (
            PopPartition(pop="LHR", at=0.0, duration=1.0),
            IpToolFault(pop="JFK", at=1.0, duration=1.0),
        )
        schedule = FaultSchedule(specs=specs)
        assert len(schedule) == 2
        assert tuple(schedule) == specs
