"""The fault injector against a live (tiny) cluster."""

import pytest

from repro.cdn.cluster import CdnCluster, ClusterConfig
from repro.experiments.scenarios import sub_topology
from repro.faults import (
    AgentCrash,
    FaultInjector,
    FaultSchedule,
    IpToolFault,
    LinkDegrade,
    LinkFlap,
    LossStorm,
    PollJitter,
    PopPartition,
    SsFault,
)
from repro.net.errors import NetworkError
from repro.obs.trace import EventType

POPS = ("LHR", "JFK", "NRT")


def tiny_cluster(seed: int = 7) -> CdnCluster:
    return CdnCluster(sub_topology(POPS), ClusterConfig(seed=seed))


def make_injector(cluster: CdnCluster, *specs) -> FaultInjector:
    injector = FaultInjector(cluster, FaultSchedule(specs=tuple(specs)))
    injector.arm()
    return injector


def trunk(cluster: CdnCluster, a: str, b: str):
    return cluster.network.trunk_between(
        cluster.pop(a).prefix, cluster.pop(b).prefix
    )


class TestNetworkFaults:
    def test_link_flap_downs_and_restores_the_trunk(self):
        cluster = tiny_cluster()
        make_injector(
            cluster, LinkFlap(pop_a="LHR", pop_b="JFK", at=1.0, duration=2.0)
        )
        duplex = trunk(cluster, "LHR", "JFK")
        assert duplex.up
        cluster.run(1.5)
        assert not duplex.up
        cluster.run(2.0)
        assert duplex.up

    def test_partition_downs_every_trunk_of_the_pop(self):
        cluster = tiny_cluster()
        make_injector(cluster, PopPartition(pop="NRT", at=1.0, duration=2.0))
        cluster.run(1.5)
        assert not trunk(cluster, "NRT", "LHR").up
        assert not trunk(cluster, "NRT", "JFK").up
        assert trunk(cluster, "LHR", "JFK").up  # untouched
        cluster.run(2.0)
        assert trunk(cluster, "NRT", "LHR").up

    def test_degrade_scales_bandwidth_and_adds_delay(self):
        cluster = tiny_cluster()
        make_injector(
            cluster,
            LinkDegrade(
                pop_a="LHR",
                pop_b="JFK",
                at=1.0,
                duration=2.0,
                bandwidth_scale=0.5,
                extra_delay=0.010,
            ),
        )
        duplex = trunk(cluster, "LHR", "JFK")
        cluster.run(1.5)
        assert duplex.forward.bandwidth_scale == 0.5
        assert duplex.forward.extra_delay == 0.010
        cluster.run(2.0)
        assert duplex.forward.bandwidth_scale == 1.0
        assert duplex.forward.extra_delay == 0.0

    def test_loss_storm_installs_and_clears_the_override(self):
        cluster = tiny_cluster()
        make_injector(
            cluster,
            LossStorm(pop="JFK", at=1.0, duration=2.0, loss_probability=0.3),
        )
        duplex = trunk(cluster, "JFK", "LHR")
        cluster.run(1.5)
        assert duplex.forward._loss_override is not None
        cluster.run(2.0)
        assert duplex.forward._loss_override is None

    def test_unknown_pop_fails_at_arm_time(self):
        cluster = tiny_cluster()
        injector = FaultInjector(
            cluster,
            FaultSchedule(
                specs=(PopPartition(pop="XXX", at=1.0, duration=1.0),)
            ),
        )
        with pytest.raises(KeyError, match="XXX"):
            injector.arm()

    def test_missing_trunk_fails_at_arm_time(self):
        # A cluster with a single PoP has no trunks at all.
        cluster = CdnCluster(sub_topology(("LHR",)), ClusterConfig(seed=7))
        injector = FaultInjector(
            cluster,
            FaultSchedule(specs=(PopPartition(pop="LHR", at=1.0, duration=1.0),)),
        )
        with pytest.raises(NetworkError, match="no trunks"):
            injector.arm()


class TestToolFaults:
    def test_ss_fault_window(self):
        cluster = tiny_cluster()
        make_injector(
            cluster, SsFault(pop="LHR", at=1.0, duration=2.0, mode="stale")
        )
        host = cluster.hosts("LHR")[0]
        cluster.run(1.5)
        assert host.ss.fault_mode == "stale"
        cluster.run(2.0)
        assert host.ss.fault_mode is None

    def test_ip_fault_window(self):
        cluster = tiny_cluster()
        make_injector(cluster, IpToolFault(pop="JFK", at=1.0, duration=2.0))
        host = cluster.hosts("JFK")[0]
        cluster.run(1.5)
        assert host.ip.failing
        cluster.run(2.0)
        assert not host.ip.failing


class TestProcessFaults:
    def test_crash_and_restart(self):
        cluster = tiny_cluster()
        cluster.start_riptide()
        make_injector(
            cluster, AgentCrash(pop="LHR", at=2.0, restart_after=3.0)
        )
        agents = cluster.agents("LHR")
        cluster.run(3.0)
        assert all(not agent.running for agent in agents)
        assert all(agent.stats.crashes == 1 for agent in agents)
        cluster.run(3.0)
        assert all(agent.running for agent in agents)
        totals = cluster.instrumentation.trace.totals()
        assert totals[EventType.AGENT_CRASHED] == len(agents)
        assert totals[EventType.AGENT_RESTARTED] == len(agents)

    def test_crash_is_noop_on_control_arm(self):
        cluster = tiny_cluster()  # Riptide never started
        make_injector(
            cluster, AgentCrash(pop="LHR", at=2.0, restart_after=3.0)
        )
        cluster.run(10.0)
        # Crash must not *start* agents on an arm where none were running.
        assert all(not agent.running for agent in cluster.agents("LHR"))
        assert all(
            agent.stats.crashes == 0 for agent in cluster.agents("LHR")
        )

    def test_crash_single_host(self):
        cluster = tiny_cluster()
        cluster.start_riptide()
        make_injector(
            cluster,
            AgentCrash(pop="LHR", at=2.0, restart_after=None, host_index=0),
        )
        cluster.run(5.0)
        agents = cluster.agents("LHR")
        assert not agents[0].running
        assert agents[1].running

    def test_poll_jitter_is_deterministic(self):
        def polls_after(seed: int) -> list[int]:
            cluster = tiny_cluster(seed=seed)
            cluster.start_riptide()
            make_injector(
                cluster,
                PollJitter(pop="LHR", at=1.0, duration=20.0, amplitude=0.8),
            )
            cluster.run(25.0)
            return [agent.stats.polls for agent in cluster.agents("LHR")]

        assert polls_after(7) == polls_after(7)
        # Jitter actually slows the loop relative to the exact cadence.
        cluster = tiny_cluster()
        cluster.start_riptide()
        cluster.run(25.0)
        unjittered = [agent.stats.polls for agent in cluster.agents("LHR")]
        assert polls_after(7) != unjittered


class TestInjectorBookkeeping:
    def test_trace_and_counters(self):
        cluster = tiny_cluster()
        injector = make_injector(
            cluster,
            LinkFlap(pop_a="LHR", pop_b="JFK", at=1.0, duration=2.0),
            SsFault(pop="LHR", at=2.0, duration=2.0),
        )
        cluster.run(1.5)
        assert injector.injected == 1
        assert [spec.kind for spec in injector.active_faults()] == ["link_flap"]
        cluster.run(4.0)
        assert injector.injected == 2
        assert injector.cleared == 2
        assert injector.active_faults() == []
        totals = cluster.instrumentation.trace.totals()
        assert totals[EventType.FAULT_INJECTED] == 2
        assert totals[EventType.FAULT_CLEARED] == 2
        metrics = cluster.instrumentation.metrics
        assert metrics.counter("fault_injections", kind="link_flap").value == 1
        assert metrics.counter("fault_injections", kind="ss_fault").value == 1
        assert metrics.gauge("faults_active").value == 0

    def test_arming_twice_rejected(self):
        cluster = tiny_cluster()
        injector = make_injector(
            cluster, SsFault(pop="LHR", at=1.0, duration=1.0)
        )
        with pytest.raises(RuntimeError, match="already armed"):
            injector.arm()
