"""Tests for the tail-latency attribution report.

The synthetic cases build one slow probe per cause and check the
priority chain assigns exactly that cause; the integration case runs a
small real study and checks every above-p90 probe comes back attributed.
"""

import json

from repro.obs import ATTRIBUTION_CAUSES, EventType, Instrumentation
from repro.obs.report import build_report, render_report, report_to_json

ARM = "riptide"
CLIENT = "10.0.0.2"
DEST = "10.5.0.1"
CLIENT_PORT = 40_000


def add_probe(
    obs,
    begin,
    duration,
    arm=ARM,
    client_port=CLIENT_PORT,
    new_connection=True,
    cwnd_source="default",
):
    span = obs.spans.begin(
        begin,
        "probe LHR->JFK 100KB",
        "probe",
        f"{arm}:LHR-1",
        arm=arm,
        src_pop="LHR",
        dst_pop="JFK",
        size=100_000,
        client=CLIENT,
        dest=DEST,
        bucket="100-150ms",
    )
    obs.spans.end(
        span,
        begin + duration,
        completed=True,
        new_connection=new_connection,
        initial_cwnd=10,
        cwnd_source=cwnd_source,
        client_port=client_port,
    )
    return span


def scenario(arm=ARM, **slow_kwargs):
    """Five fast probes and one slow one: p90 lands on the fast value."""
    obs = Instrumentation()
    for index in range(5):
        add_probe(obs, 100.0 + index, 0.1, arm=arm, client_port=50_000 + index)
    slow = add_probe(obs, 10.0, 2.0, arm=arm, **slow_kwargs)
    return obs, slow


def the_cause(report):
    assert len(report["slow_probes"]) == 1
    return report["slow_probes"][0]["cause"]


class TestAttributionCauses:
    def test_guard_withdrawal_wins_over_everything(self):
        obs, _ = scenario()
        obs.spans.begin(
            9.0,
            "guard-hold 10.0.0.0/16",
            "guard",
            f"{ARM}:JFK-0",
            destination="10.0.0.0/16",
            reason="rtt_regression",
            window=40,
            hold=30.0,
        )
        # A storm too: the guard must still win (priority order).
        obs.spans.begin(
            9.0, "loss storm", "fault", "fault-injector", kind="loss_storm", pop="JFK"
        )
        report = build_report(obs)
        assert the_cause(report) == "guard_withdrawal"
        evidence = report["slow_probes"][0]["evidence"]
        assert evidence["guard_destination"] == "10.0.0.0/16"

    def test_guard_on_another_pop_does_not_match(self):
        obs, _ = scenario()
        obs.spans.begin(
            9.0,
            "guard-hold 10.0.0.0/16",
            "guard",
            f"{ARM}:NRT-0",  # wrong destination PoP
            destination="10.0.0.0/16",
            reason="rtt_regression",
        )
        report = build_report(obs)
        assert the_cause(report) == "genuinely_fast_path"

    def test_route_not_yet_learned_needs_default_server_window(self):
        obs, _ = scenario()
        obs.flows.begin(
            host=f"{ARM}:JFK-0",
            local=DEST,
            local_port=8080,
            remote=CLIENT,
            remote_port=CLIENT_PORT,
            opened_at=10.0,
            is_client=False,
            initial_cwnd=10,
            cwnd_source="default",
        )
        report = build_report(obs)
        assert the_cause(report) == "route_not_yet_learned"
        assert report["slow_probes"][0]["server_cwnd_source"] == "default"

    def test_control_arm_never_blames_missing_routes(self):
        obs, _ = scenario(arm="control")
        obs.flows.begin(
            host="control:JFK-0",
            local=DEST,
            local_port=8080,
            remote=CLIENT,
            remote_port=CLIENT_PORT,
            opened_at=10.0,
            is_client=False,
            initial_cwnd=10,
            cwnd_source="default",
        )
        report = build_report(obs)
        assert the_cause(report) == "genuinely_fast_path"

    def test_loss_storm_on_either_end_pop(self):
        obs, _ = scenario(new_connection=False, cwnd_source="route")
        obs.spans.begin(
            9.5, "loss storm", "fault", "fault-injector", kind="loss_storm", pop="JFK"
        )
        report = build_report(obs)
        assert the_cause(report) == "loss_storm"

    def test_non_overlapping_storm_is_ignored(self):
        obs, _ = scenario(new_connection=False)
        storm = obs.spans.begin(
            0.0, "loss storm", "fault", "fault-injector", kind="loss_storm", pop="JFK"
        )
        obs.spans.end(storm, 5.0)  # over before the slow probe begins
        report = build_report(obs)
        assert the_cause(report) == "genuinely_fast_path"

    def test_rto_stall_from_client_side_trace(self):
        obs, _ = scenario(new_connection=False)
        obs.trace.record(
            11.0,
            EventType.RTO_FIRED,
            f"{ARM}:LHR-1",
            remote=DEST,
            port=CLIENT_PORT,
        )
        report = build_report(obs)
        assert the_cause(report) == "rto_stall"
        assert report["slow_probes"][0]["evidence"]["rtos"] == 1

    def test_rto_stall_from_server_side_flow(self):
        obs, _ = scenario(new_connection=False)
        obs.flows.begin(
            host=f"{ARM}:JFK-0",
            local=DEST,
            local_port=8080,
            remote=CLIENT,
            remote_port=CLIENT_PORT,
            opened_at=10.0,
            is_client=False,
            initial_cwnd=40,
            cwnd_source="route",
        )
        obs.trace.record(
            11.0,
            EventType.FAST_RETRANSMIT,
            f"{ARM}:JFK-0",
            remote=CLIENT,
            remote_port=CLIENT_PORT,
        )
        report = build_report(obs)
        assert the_cause(report) == "rto_stall"
        assert report["slow_probes"][0]["evidence"]["fast_retransmits"] == 1

    def test_fallback_is_genuinely_fast_path(self):
        obs, _ = scenario(new_connection=False)
        report = build_report(obs)
        assert the_cause(report) == "genuinely_fast_path"


class TestReportShape:
    def test_counts_and_arms(self):
        obs, _ = scenario()
        report = build_report(obs, experiment="synthetic")
        assert report["experiment"] == "synthetic"
        assert report["probes"]["total"] == 6
        assert report["probes"]["completed"] == 6
        assert report["arms"][ARM]["slow"] == 1
        assert sum(report["causes"].values()) == 1
        assert tuple(report["causes"]) == ATTRIBUTION_CAUSES

    def test_failed_and_incomplete_probes_counted(self):
        obs, _ = scenario()
        failed = obs.spans.begin(
            0.0, "probe", "probe", f"{ARM}:LHR-1", arm=ARM, client=CLIENT, dest=DEST
        )
        obs.spans.end(failed, 1.0, completed=False, failed="timeout")
        obs.spans.begin(
            0.0, "probe", "probe", f"{ARM}:LHR-1", arm=ARM, client=CLIENT, dest=DEST
        )
        report = build_report(obs)
        assert report["probes"]["failed"] == 1
        assert report["probes"]["incomplete"] == 1

    def test_json_round_trips_and_render_mentions_causes(self):
        obs, _ = scenario()
        report = build_report(obs, experiment="synthetic")
        assert json.loads(report_to_json(report)) == report
        text = render_report(report)
        assert "Tail-latency attribution: synthetic" in text
        for cause in ATTRIBUTION_CAUSES:
            assert cause in text

    def test_render_warns_on_trace_truncation(self):
        obs = Instrumentation(trace_capacity=1)
        add_probe(obs, 0.0, 0.1)
        obs.trace.record(0.0, EventType.CONN_OPENED, "a")
        obs.trace.record(1.0, EventType.CONN_OPENED, "a")
        text = render_report(build_report(obs))
        assert "WARNING: trace ring dropped 1" in text


class TestIntegration:
    def test_every_slow_probe_of_a_real_study_is_attributed(self):
        from repro.experiments.scenarios import (
            ProbeStudyConfig,
            run_paired_probe_study,
        )
        from repro.obs import capture

        config = ProbeStudyConfig(
            topology_codes=("LHR", "JFK", "NRT"),
            source_pops=("LHR",),
            warmup=2.0,
            duration=12.0,
            probe_interval=4.0,
            organic_rate=1.0,
        )
        with capture() as obs:
            run_paired_probe_study(config)
        report = build_report(obs, experiment="probe-study")
        assert sorted(report["arms"]) == ["control", "riptide"]
        assert report["probes"]["completed"] > 0
        total_slow = sum(stats["slow"] for stats in report["arms"].values())
        assert len(report["slow_probes"]) == total_slow
        assert sum(report["causes"].values()) == total_slow
        for entry in report["slow_probes"]:
            assert entry["cause"] in ATTRIBUTION_CAUSES
        assert report["flows"]["recorded"] > 0
        assert report["timeline"]["retained"] > 0
