"""Unit tests for counters, gauges, histograms and the registry."""

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, format_labels


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)


class TestGauge:
    def test_tracks_last_written_value(self):
        gauge = Gauge("g")
        gauge.set(3.0)
        gauge.set(1.0)
        assert gauge.value == 1.0

    def test_high_water_mark_survives_decrease(self):
        gauge = Gauge("g")
        gauge.set(7.0)
        gauge.set(2.0)
        assert gauge.max_value == 7.0

    def test_first_write_sets_mark_even_when_negative(self):
        gauge = Gauge("g")
        gauge.set(-5.0)
        assert gauge.max_value == -5.0


class TestHistogram:
    def test_summary_statistics(self):
        histogram = Histogram("h")
        for value in (4.0, 1.0, 3.0, 2.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == 10.0
        assert histogram.mean == 2.5
        assert histogram.min == 1.0
        assert histogram.max == 4.0
        assert histogram.values() == [1.0, 2.0, 3.0, 4.0]

    def test_exact_percentiles(self):
        histogram = Histogram("h")
        for value in (1.0, 2.0, 3.0, 4.0, 5.0):
            histogram.observe(value)
        assert histogram.percentile(0.0) == 1.0
        assert histogram.percentile(50.0) == 3.0
        assert histogram.percentile(100.0) == 5.0

    def test_empty_histogram_raises_on_readout(self):
        histogram = Histogram("h")
        with pytest.raises(ValueError):
            histogram.mean  # noqa: B018 - property access is the test
        with pytest.raises(ValueError):
            histogram.percentile(50.0)

    def test_percentile_bounds_enforced(self):
        histogram = Histogram("h")
        histogram.observe(1.0)
        with pytest.raises(ValueError):
            histogram.percentile(101.0)

    def test_lazy_sort_survives_interleaved_reads_and_writes(self):
        # observe() only appends; the sort is deferred to the first
        # ordered read and must re-trigger after further observes.
        histogram = Histogram("h")
        for value in (5.0, 1.0, 3.0):
            histogram.observe(value)
        assert histogram.min == 1.0
        assert histogram.values() == [1.0, 3.0, 5.0]
        histogram.observe(0.5)
        histogram.observe(4.0)
        assert histogram.min == 0.5
        assert histogram.percentile(100.0) == 5.0
        assert histogram.values() == [0.5, 1.0, 3.0, 4.0, 5.0]

    def test_observed_between_slices_by_sim_time(self):
        histogram = Histogram("h")
        histogram.observe(1.0, t=0.0)
        histogram.observe(2.0, t=5.0)
        histogram.observe(3.0, t=10.0)
        histogram.observe(99.0)  # untimed: never in a window
        assert histogram.observed_between(0.0, 10.0) == [1.0, 2.0]
        assert histogram.observed_between(5.0, 11.0) == [2.0, 3.0]

    def test_registry_merge_keeps_ordered_reads_correct(self):
        from repro.obs import MetricsRegistry

        mine, theirs = MetricsRegistry(), MetricsRegistry()
        mine.histogram("h").observe(5.0)
        theirs.histogram("h").observe(1.0)
        theirs.histogram("h").observe(3.0)
        merged = mine.histogram("h")
        assert merged.values() == [5.0]  # sorted read before the merge
        mine.merge_from(theirs)
        assert merged.values() == [1.0, 3.0, 5.0]
        assert merged.sum == 9.0


class TestRegistry:
    def test_get_or_create_returns_same_handle(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        assert registry.counter("c", a="1", b="2") is registry.counter(
            "c", b="2", a="1"
        )

    def test_distinct_labels_are_distinct_instruments(self):
        registry = MetricsRegistry()
        registry.counter("c", host="a").inc()
        registry.counter("c", host="b").inc(2)
        assert registry.counter_value("c", host="a") == 1
        assert registry.counter_value("c", host="b") == 2

    def test_counter_value_of_unregistered_is_zero(self):
        assert MetricsRegistry().counter_value("nope") == 0

    def test_total_sums_across_label_sets(self):
        registry = MetricsRegistry()
        registry.counter("c", host="a").inc(3)
        registry.counter("c", host="b").inc(4)
        registry.counter("other").inc(100)
        assert registry.total("c") == 7

    def test_snapshot_flattens_all_kinds(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(2.0)
        registry.histogram("h").observe(1.0)
        kinds = [row.kind for row in registry.snapshot()]
        assert kinds == ["counter", "gauge", "histogram"]

    def test_render_table_names_every_instrument(self):
        registry = MetricsRegistry()
        registry.counter("events", kind="x").inc(9)
        registry.histogram("latency").observe(0.5)
        table = registry.render_table()
        assert "events{kind=x}" in table
        assert "value=9" in table
        assert "latency" in table
        assert "p50=0.5" in table

    def test_render_table_empty_registry(self):
        assert "no metrics" in MetricsRegistry().render_table()


def test_format_labels():
    assert format_labels(()) == ""
    assert format_labels((("a", "1"), ("b", "2"))) == "{a=1,b=2}"
