"""Unit tests for the SLO engine: burn rates, lifecycle, alert report."""

import json

import pytest

from repro.obs import EventType, Instrumentation
from repro.obs.slo import (
    AlertLog,
    BurnRateRule,
    SloEngine,
    SloSignal,
    SloSpec,
    alert_report_to_json,
    alert_report_to_markdown,
    build_alert_report,
    default_burn_rules,
    default_slos,
    source_matches_arm,
)

WINDOW = 5.0


def make_engine(
    instrumentation: Instrumentation,
    *,
    rules: tuple[BurnRateRule, ...] | None = None,
    arm: str = "",
) -> SloEngine:
    """An engine over one 'last'-signal spec with a whole-budget objective."""
    spec = SloSpec(
        name="sig_high",
        description="signal stays at or under 1",
        signal=SloSignal(kind="last", series="sig"),
        threshold=1.0,
        objective=1.0,
    )
    if rules is None:
        rules = (
            BurnRateRule(
                severity="page", long_window=10.0, short_window=5.0, burn_factor=1.0
            ),
        )
    return SloEngine(
        instrumentation.tsdb,
        instrumentation.metrics,
        instrumentation.trace,
        instrumentation.spans,
        instrumentation.alerts,
        specs=(spec,),
        rules=rules,
        arm=arm,
        window=WINDOW,
    )


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kind": "max", "series": "x"},
            {"kind": "sum_ratio", "series": "x"},
            {"kind": "last", "series": "x", "denominator": "y"},
            {"kind": "percentile", "series": "x", "p": 0.0},
            {"kind": "percentile", "series": "x", "p": 101.0},
            {"kind": "last", "series": "x", "min_count": -1.0},
        ],
    )
    def test_bad_signal_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SloSignal(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": ""},
            {"comparison": "near"},
            {"objective": 0.0},
            {"objective": 1.5},
        ],
    )
    def test_bad_spec_rejected(self, kwargs):
        base = dict(
            name="s",
            description="",
            signal=SloSignal(kind="last", series="x"),
            threshold=1.0,
        )
        base.update(kwargs)
        with pytest.raises(ValueError):
            SloSpec(**base)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"severity": ""},
            {"short_window": 0.0},
            {"long_window": 1.0, "short_window": 5.0},
            {"burn_factor": 0.0},
            {"for_duration": -1.0},
        ],
    )
    def test_bad_rule_rejected(self, kwargs):
        base = dict(
            severity="page", long_window=15.0, short_window=5.0, burn_factor=2.0
        )
        base.update(kwargs)
        with pytest.raises(ValueError):
            BurnRateRule(**base)

    def test_engine_window_must_be_positive(self):
        obs = Instrumentation()
        with pytest.raises(ValueError):
            SloEngine(
                obs.tsdb, obs.metrics, obs.trace, obs.spans, obs.alerts, window=0.0
            )

    def test_defaults_construct(self):
        assert len(default_slos()) == 4
        assert {rule.severity for rule in default_burn_rules()} == {"page", "ticket"}


class TestBurnRate:
    def test_bad_fraction_over_objective(self):
        obs = Instrumentation()
        engine = make_engine(obs)
        spec = engine.specs[0]
        obs.tsdb.record(1.0, "h", "sig", 2.0)  # window 0: bad
        obs.tsdb.record(6.0, "h", "sig", 0.5)  # window 1: good
        obs.tsdb.record(11.0, "h", "sig", 2.0)  # window 2: bad
        assert engine.burn_rate(spec, "h", 11.0, 10.0) == pytest.approx(2.0 / 3.0)
        assert engine.burn_rate(spec, "h", 11.0, 5.0) == pytest.approx(0.5)

    def test_empty_lookback_has_no_opinion(self):
        obs = Instrumentation()
        engine = make_engine(obs)
        assert engine.burn_rate(engine.specs[0], "h", 11.0, 10.0) is None

    def test_windows_without_signal_are_skipped(self):
        obs = Instrumentation()
        engine = make_engine(obs)
        obs.tsdb.record(1.0, "h", "sig", 2.0)  # window 0 bad; 1-2 empty
        assert engine.burn_rate(engine.specs[0], "h", 11.0, 10.0) == pytest.approx(1.0)


def drive_bad(obs: Instrumentation, times: tuple[float, ...]) -> None:
    for t in times:
        obs.tsdb.record(t, "h", "sig", 2.0)


class TestLifecycle:
    def test_pending_fires_immediately_without_dwell(self):
        obs = Instrumentation()
        engine = make_engine(obs)
        drive_bad(obs, (1.0, 6.0, 11.0))
        engine.evaluate(11.0)
        (episode,) = obs.alerts.episodes()
        assert episode.pending_at == 11.0
        assert episode.firing_at == 11.0
        assert episode.resolved_at is None
        assert obs.trace.events(type=EventType.ALERT_PENDING)
        assert obs.trace.events(type=EventType.ALERT_FIRING)
        assert obs.metrics.gauge("slo_alerts_firing").value == 1.0

    def test_firing_resolves_when_burn_clears(self):
        obs = Instrumentation()
        engine = make_engine(obs)
        drive_bad(obs, (1.0, 6.0, 11.0))
        engine.evaluate(11.0)
        obs.tsdb.record(16.0, "h", "sig", 0.5)
        obs.tsdb.record(21.0, "h", "sig", 0.5)
        engine.evaluate(21.0)
        (episode,) = obs.alerts.episodes()
        assert episode.resolved
        assert episode.resolved_at == 21.0
        assert episode.peak_burn >= 1.0
        assert obs.trace.events(type=EventType.ALERT_RESOLVED)
        (span,) = obs.spans.spans(category="alert")
        assert span.begin == 11.0 and span.end == 21.0
        assert obs.metrics.gauge("slo_alerts_firing").value == 0.0

    def test_dwell_keeps_alert_pending_until_for_duration(self):
        obs = Instrumentation()
        rules = (
            BurnRateRule(
                severity="ticket",
                long_window=10.0,
                short_window=5.0,
                burn_factor=1.0,
                for_duration=5.0,
            ),
        )
        engine = make_engine(obs, rules=rules)
        drive_bad(obs, (1.0, 6.0, 11.0, 16.0, 21.0))
        engine.evaluate(11.0)
        (episode,) = obs.alerts.episodes()
        assert episode.firing_at is None
        engine.evaluate(13.0)  # 2s into the dwell: still pending
        assert episode.firing_at is None
        engine.evaluate(16.0)  # dwell satisfied
        assert episode.firing_at == 16.0

    def test_pending_washout_is_silent(self):
        obs = Instrumentation()
        rules = (
            BurnRateRule(
                severity="ticket",
                long_window=10.0,
                short_window=5.0,
                burn_factor=1.0,
                for_duration=5.0,
            ),
        )
        engine = make_engine(obs, rules=rules)
        drive_bad(obs, (1.0, 6.0, 11.0))
        engine.evaluate(11.0)
        obs.tsdb.record(16.0, "h", "sig", 0.5)
        obs.tsdb.record(21.0, "h", "sig", 0.5)
        engine.evaluate(21.0)
        (episode,) = obs.alerts.episodes()
        assert not episode.fired
        assert episode.resolved_at == 21.0  # washout stamped on the episode
        assert not obs.trace.events(type=EventType.ALERT_FIRING)
        assert not obs.trace.events(type=EventType.ALERT_RESOLVED)
        assert obs.alerts.fired_count == 0

    def test_arm_filter_ignores_other_arms(self):
        obs = Instrumentation()
        engine = make_engine(obs, arm="riptide")
        for t in (1.0, 6.0, 11.0):
            obs.tsdb.record(t, "riptide:h", "sig", 2.0)
            obs.tsdb.record(t, "control:h", "sig", 2.0)
        engine.evaluate(11.0)
        sources = {e.source for e in obs.alerts.episodes()}
        assert sources == {"riptide:h"}

    def test_evaluations_counted(self):
        obs = Instrumentation()
        engine = make_engine(obs)
        engine.evaluate(1.0)
        engine.evaluate(2.0)
        assert obs.metrics.counter_value("slo_evaluations") == 2


class TestSourceMatchesArm:
    def test_labelled_arm(self):
        assert source_matches_arm("riptide:LHR-0", "riptide")
        assert source_matches_arm("riptide:LHR-0|10.0.0.0/16", "riptide")
        assert source_matches_arm("riptide", "riptide")
        assert not source_matches_arm("control:LHR-0", "riptide")

    def test_empty_arm_matches_only_unqualified(self):
        assert source_matches_arm("probes", "")
        assert not source_matches_arm("riptide:probes", "")


class TestAlertLog:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            AlertLog(capacity=0)

    def test_drop_newest_past_capacity(self):
        log = AlertLog(capacity=1)
        rule = BurnRateRule(
            severity="page", long_window=10.0, short_window=5.0, burn_factor=1.0
        )
        assert log.begin(1.0, "s", "page", "h", rule) is not None
        assert log.begin(2.0, "s", "page", "h", rule) is None
        assert log.next_id == 2
        assert log.dropped == 1

    def test_merge_renumbers_ids_densely(self):
        rule = BurnRateRule(
            severity="page", long_window=10.0, short_window=5.0, burn_factor=1.0
        )
        first, second = AlertLog(), AlertLog()
        first.begin(1.0, "s", "page", "h", rule)
        second.begin(2.0, "s", "page", "h", rule)
        second.begin(3.0, "s", "page", "h", rule)
        target = AlertLog()
        target.merge_from(first)
        target.merge_from(second)
        assert [e.alert_id for e in target.episodes()] == [0, 1, 2]
        assert target.next_id == 3


class TestAlertReport:
    def test_report_shape_and_json_round_trip(self):
        obs = Instrumentation()
        engine = make_engine(obs)
        drive_bad(obs, (1.0, 6.0, 11.0))
        engine.evaluate(11.0)
        report = build_alert_report(
            obs.alerts, specs=engine.specs, experiment="unit"
        )
        assert report["experiment"] == "unit"
        (row,) = report["slos"]
        assert row["slo"] == "sig_high"
        assert row["fired"] == 1
        parsed = json.loads(alert_report_to_json(report))
        assert parsed == report

    def test_markdown_lists_episodes(self):
        obs = Instrumentation()
        engine = make_engine(obs)
        drive_bad(obs, (1.0, 6.0, 11.0))
        engine.evaluate(11.0)
        report = build_alert_report(obs.alerts, specs=engine.specs)
        text = alert_report_to_markdown(report)
        assert "| sig_high |" in text
        assert "## Episodes" in text
        assert "| 0 | sig_high | page | h | 11.0 | 11.0 | - |" in text

    def test_markdown_without_alerts(self):
        report = build_alert_report(AlertLog())
        assert "_No alerts._" in alert_report_to_markdown(report)
