"""Unit tests for the structured trace log."""

import pytest

from repro.obs import EventType, TraceLog


class TestRecordAndQuery:
    def test_record_returns_typed_event(self):
        log = TraceLog()
        event = log.record(1.5, EventType.ROUTE_INSTALLED, "srv", window=40)
        assert event.time == 1.5
        assert event.type is EventType.ROUTE_INSTALLED
        assert event.detail("window") == 40
        assert event.detail("absent", default="d") == "d"

    def test_filter_by_type_source_and_time(self):
        log = TraceLog()
        log.record(0.0, EventType.CONN_OPENED, "a")
        log.record(1.0, EventType.CONN_OPENED, "b")
        log.record(2.0, EventType.RTO_FIRED, "a")
        assert len(log.events(type=EventType.CONN_OPENED)) == 2
        assert len(log.events(source="a")) == 2
        assert len(log.events(since=1.0)) == 2
        assert len(log.events(type=EventType.RTO_FIRED, source="b")) == 0

    def test_last_overall_and_per_type(self):
        log = TraceLog()
        assert log.last() is None
        log.record(0.0, EventType.CONN_OPENED, "a")
        log.record(1.0, EventType.RTO_FIRED, "a")
        assert log.last().type is EventType.RTO_FIRED
        assert log.last(EventType.CONN_OPENED).time == 0.0
        assert log.last(EventType.ROUTE_EXPIRED) is None

    def test_format_is_readable(self):
        log = TraceLog()
        event = log.record(2.0, EventType.ROUTE_EXPIRED, "srv", destination="10.0.0.1/32")
        assert "route_expired" in event.format()
        assert "destination=10.0.0.1/32" in event.format()


class TestRingAndTotals:
    def test_ring_drops_oldest_but_totals_do_not(self):
        log = TraceLog(capacity=3)
        for i in range(5):
            log.record(float(i), EventType.CONN_OPENED, "a")
        assert len(log) == 3
        assert [e.time for e in log.events()] == [2.0, 3.0, 4.0]
        assert log.count(EventType.CONN_OPENED) == 5
        assert log.totals() == {EventType.CONN_OPENED: 5}

    def test_recorded_and_dropped_counters(self):
        log = TraceLog(capacity=3)
        assert log.recorded == 0 and log.dropped == 0
        for i in range(5):
            log.record(float(i), EventType.CONN_OPENED, "a")
        assert log.recorded == 5
        assert log.dropped == 2

    def test_count_of_unseen_type_is_zero(self):
        assert TraceLog().count(EventType.RTO_FIRED) == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceLog(capacity=0)
