"""Unit tests for the windowed time-series store."""

import pytest

from repro.obs import WindowedStore


class TestRecordAndFilter:
    def test_points_keep_record_order(self):
        store = WindowedStore()
        store.record(1.0, "s", "x", 10.0)
        store.record(0.5, "s", "x", 20.0)
        assert [p.value for p in store.points()] == [10.0, 20.0]

    def test_filters_compose(self):
        store = WindowedStore()
        store.record(0.0, "a", "x", 1.0)
        store.record(2.0, "b", "x", 2.0)
        store.record(4.0, "a", "y", 3.0)
        assert len(store.points(series="x")) == 2
        assert len(store.points(source="a")) == 2
        assert len(store.points(series="x", source="a")) == 1
        assert store.points(series="y", source="b") == []

    def test_since_until_are_inclusive(self):
        store = WindowedStore()
        for t in (0.0, 1.0, 2.0, 3.0):
            store.record(t, "s", "x", t)
        assert [p.time for p in store.points(since=1.0, until=2.0)] == [1.0, 2.0]
        assert [p.time for p in store.points(since=3.0)] == [3.0]
        assert [p.time for p in store.points(until=0.0)] == [0.0]

    def test_sorted_name_helpers(self):
        store = WindowedStore()
        store.record(0.0, "b", "x", 1.0)
        store.record(0.0, "a", "x", 1.0)
        store.record(0.0, "a", "y", 1.0)
        assert store.series_names() == ["a:x", "a:y", "b:x"]
        assert store.sources_for("x") == ["a", "b"]
        assert store.sources_for("missing") == []


class TestCapacityAndMerge:
    def test_drop_newest_counts_overflow(self):
        store = WindowedStore(capacity=2)
        for i in range(5):
            store.record(float(i), "s", "x", i)
        assert len(store) == 2
        assert store.recorded == 5
        assert store.dropped == 3
        assert [p.time for p in store.points()] == [0.0, 1.0]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            WindowedStore(capacity=0)

    def test_merge_matches_serial_retention(self):
        serial = WindowedStore(capacity=3)
        for i in range(5):
            serial.record(float(i), "s", "x", i)

        first, second = WindowedStore(), WindowedStore()
        for i in range(2):
            first.record(float(i), "s", "x", i)
        for i in range(2, 5):
            second.record(float(i), "s", "x", i)
        target = WindowedStore(capacity=3)
        target.merge_from(first)
        target.merge_from(second)

        assert target.points() == serial.points()
        assert target.recorded == serial.recorded
        assert target.dropped == serial.dropped

    def test_merged_aggregates_equal_serial_floats(self):
        # fsum at read time: merged stores derive the exact floats the
        # serial run derives, regardless of task split.
        values = [0.1, 0.2, 0.3, 0.7, 1.1, 1.3]
        serial = WindowedStore()
        for i, v in enumerate(values):
            serial.record(i * 0.1, "s", "x", v)
        first, second = WindowedStore(), WindowedStore()
        for i, v in enumerate(values[:2]):
            first.record(i * 0.1, "s", "x", v)
        for i, v in enumerate(values[2:], start=2):
            second.record(i * 0.1, "s", "x", v)
        merged = WindowedStore()
        merged.merge_from(first)
        merged.merge_from(second)
        assert merged.window_sum("s", "x", 0, 5.0) == serial.window_sum("s", "x", 0, 5.0)
        agg_m = merged.aggregate("s", "x", 0, 5.0)
        agg_s = serial.aggregate("s", "x", 0, 5.0)
        assert agg_m == agg_s


class TestWindowDerivations:
    def test_window_alignment(self):
        assert WindowedStore.window_index(0.0, 5.0) == 0
        assert WindowedStore.window_index(4.999, 5.0) == 0
        assert WindowedStore.window_index(5.0, 5.0) == 1

    def test_aggregate_and_last(self):
        store = WindowedStore()
        store.record(1.0, "s", "x", 3.0)
        store.record(2.0, "s", "x", 1.0)
        store.record(6.0, "s", "x", 9.0)
        agg = store.aggregate("s", "x", 0, 5.0)
        assert agg is not None
        assert (agg.count, agg.minimum, agg.maximum, agg.last) == (2, 1.0, 3.0, 1.0)
        assert agg.mean == 2.0
        assert store.last("s", "x", 1, 5.0) == 9.0
        assert store.aggregate("s", "x", 2, 5.0) is None

    def test_percentile_nearest_rank(self):
        store = WindowedStore()
        for v in (5.0, 1.0, 3.0, 2.0, 4.0):
            store.record(0.5, "s", "x", v)
        assert store.percentile("s", "x", 0, 5.0, 50.0) == 3.0
        assert store.percentile("s", "x", 0, 5.0, 90.0) == 5.0
        assert store.percentile("s", "x", 0, 5.0, 100.0) == 5.0
        assert store.percentile("s", "x", 1, 5.0, 90.0) is None

    def test_delta_needs_both_windows(self):
        store = WindowedStore()
        store.record(1.0, "s", "total", 10.0)
        store.record(6.0, "s", "total", 25.0)
        assert store.delta("s", "total", 1, 5.0) == 15.0
        assert store.delta("s", "total", 0, 5.0) is None
        assert store.delta("s", "total", 2, 5.0) is None

    def test_rate_is_sum_over_width(self):
        store = WindowedStore()
        store.record(0.5, "s", "trips", 1.0)
        store.record(3.0, "s", "trips", 2.0)
        assert store.rate("s", "trips", 0, 5.0) == pytest.approx(0.6)
        assert store.rate("s", "trips", 1, 5.0) is None

    def test_sum_ratio_with_min_denominator(self):
        store = WindowedStore()
        store.record(1.0, "s", "retx", 3.0)
        store.record(1.0, "s", "sent", 30.0)
        assert store.sum_ratio("s", "retx", "sent", 0, 5.0) == pytest.approx(0.1)
        # Too little signal: below the min_denominator floor -> no opinion.
        assert store.sum_ratio("s", "retx", "sent", 0, 5.0, min_denominator=50.0) is None
        # Missing numerator or denominator -> no opinion, not zero.
        assert store.sum_ratio("s", "missing", "sent", 0, 5.0) is None
        assert store.sum_ratio("s", "retx", "missing", 0, 5.0) is None
