"""Unit tests for per-connection flow records."""

import pytest

from repro.obs import FlowLog


def begin(log, index=0, **overrides):
    kwargs = dict(
        host="srv",
        local="10.0.0.1",
        local_port=8080,
        remote="10.1.0.1",
        remote_port=32768 + index,
        opened_at=float(index),
        is_client=False,
        initial_cwnd=10,
        cwnd_source="default",
    )
    kwargs.update(overrides)
    return log.begin(**kwargs)


class TestBeginAndQuery:
    def test_ids_are_dense_in_begin_order(self):
        log = FlowLog()
        records = [begin(log, i) for i in range(3)]
        assert [r.flow_id for r in records] == [0, 1, 2]
        assert log.next_id == 3

    def test_filters_by_host_side_and_openness(self):
        log = FlowLog()
        server = begin(log, 0, host="srv")
        client = begin(log, 1, host="cli", is_client=True)
        client.closed_at = 5.0
        assert log.records(host="srv") == [server]
        assert log.records(is_client=True) == [client]
        assert log.records(open_only=True) == [server]

    def test_to_dict_has_stable_key_order(self):
        log = FlowLog()
        record = begin(log)
        keys = list(record.to_dict())
        assert keys[:3] == ["flow_id", "host", "local"]
        assert keys[-1] == "segments_retransmitted"


class TestCapacity:
    def test_drop_newest_counts_but_does_not_store(self):
        log = FlowLog(capacity=2)
        assert begin(log, 0) is not None
        assert begin(log, 1) is not None
        assert begin(log, 2) is None  # counted, not retained
        assert len(log) == 2
        assert log.next_id == 3
        assert log.dropped == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlowLog(capacity=0)


class TestMerge:
    def test_merge_renumbers_like_a_serial_run(self):
        serial = FlowLog()
        begin(serial, 0)
        begin(serial, 1)
        begin(serial, 2)

        first, second = FlowLog(), FlowLog()
        begin(first, 0)
        begin(first, 1)
        begin(second, 2)
        target = FlowLog()
        target.merge_from(first)
        target.merge_from(second)

        assert [r.flow_id for r in target.records()] == [0, 1, 2]
        assert [r.to_dict() for r in target.records()] == [
            r.to_dict() for r in serial.records()
        ]

    def test_merge_respects_capacity_and_dropped_count(self):
        target = FlowLog(capacity=2)
        begin(target, 0)
        other = FlowLog()
        begin(other, 1)
        begin(other, 2)
        target.merge_from(other)
        assert len(target) == 2
        assert target.next_id == 3
        assert target.dropped == 1
        # The retained prefix is what a serial capacity-2 run would keep.
        assert [r.flow_id for r in target.records()] == [0, 1]
