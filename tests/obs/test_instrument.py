"""Tests for instrumentation wiring: sim.obs, capture() and hot paths."""

from repro.obs import Instrumentation, active_instrumentation, capture
from repro.sim import Simulator
from repro.testing import TwoHostTestbed, request_response


class TestCapture:
    def test_no_context_means_private_instrumentation(self):
        assert active_instrumentation() is None
        first, second = Simulator(), Simulator()
        assert first.obs is not second.obs

    def test_simulators_in_capture_share_one_instrumentation(self):
        with capture() as instrumentation:
            first, second = Simulator(), Simulator()
        assert first.obs is instrumentation
        assert second.obs is instrumentation
        assert active_instrumentation() is None

    def test_capture_contexts_nest(self):
        with capture() as outer:
            with capture() as inner:
                assert Simulator().obs is inner
            assert Simulator().obs is outer

    def test_explicit_instrumentation_beats_capture(self):
        private = Instrumentation()
        with capture():
            assert Simulator(instrumentation=private).obs is private


class TestTsdbAndAlerts:
    def test_every_instrumentation_bundles_tsdb_and_alert_log(self):
        instrumentation = Instrumentation()
        assert instrumentation.tsdb.recorded == 0
        assert len(instrumentation.alerts) == 0

    def test_merge_folds_tsdb_and_alerts(self):
        from repro.obs.slo import BurnRateRule

        rule = BurnRateRule(
            severity="page", long_window=10.0, short_window=5.0, burn_factor=1.0
        )
        worker = Instrumentation()
        worker.tsdb.record(1.0, "h", "sig", 2.0)
        worker.alerts.begin(1.0, "slo", "page", "h", rule)
        target = Instrumentation()
        target.alerts.begin(0.5, "slo", "page", "g", rule)
        target.merge_from(worker)
        assert [p.value for p in target.tsdb.points()] == [2.0]
        assert [e.alert_id for e in target.alerts.episodes()] == [0, 1]


class TestInstrumentedRun:
    """One end-to-end transfer populates every layer's instruments."""

    def test_sim_tcp_and_link_metrics_populate(self):
        with capture() as instrumentation:
            bed = TwoHostTestbed(rtt=0.050, bandwidth_bps=1e9)
            bed.serve_echo()
            request_response(bed, response_bytes=100_000)
        metrics = instrumentation.metrics
        assert metrics.counter_value("sim_events_processed") > 0
        assert metrics.counter_value("tcp_connections_opened") == 2
        assert metrics.counter_value("link_packets_delivered") > 0
        assert metrics.counter_value("link_packets_dropped_loss") == 0

    def test_connection_open_is_traced_with_initial_window(self):
        with capture() as instrumentation:
            bed = TwoHostTestbed(rtt=0.050, bandwidth_bps=1e9)
            bed.serve_echo()
            request_response(bed, response_bytes=10_000)
        from repro.obs import EventType

        opened = instrumentation.trace.events(type=EventType.CONN_OPENED)
        assert opened
        assert all(event.detail("initial_cwnd") is not None for event in opened)
