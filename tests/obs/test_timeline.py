"""Unit tests for the time-series sampler store."""

import pytest

from repro.obs import Timeline


class TestRecordAndQuery:
    def test_points_keep_record_order(self):
        timeline = Timeline()
        timeline.record(0.0, "srv", "installed_routes", 2)
        timeline.record(2.0, "srv", "installed_routes", 3)
        values = [p.value for p in timeline.points(series="installed_routes")]
        assert values == [2.0, 3.0]

    def test_filters_by_series_and_source(self):
        timeline = Timeline()
        timeline.record(0.0, "a", "x", 1.0)
        timeline.record(0.0, "b", "x", 2.0)
        timeline.record(0.0, "a", "y", 3.0)
        assert len(timeline.points(series="x")) == 2
        assert len(timeline.points(source="a")) == 2
        assert len(timeline.points(series="y", source="b")) == 0

    def test_since_until_are_inclusive(self):
        timeline = Timeline()
        for t in (0.0, 2.0, 4.0, 6.0):
            timeline.record(t, "s", "x", t)
        assert [p.time for p in timeline.points(since=2.0, until=4.0)] == [2.0, 4.0]
        assert [p.time for p in timeline.points(since=6.0)] == [6.0]
        assert [p.time for p in timeline.points(until=0.0)] == [0.0]
        assert timeline.points(since=7.0) == []

    def test_time_filters_compose_with_series_and_source(self):
        timeline = Timeline()
        timeline.record(1.0, "a", "x", 1.0)
        timeline.record(3.0, "a", "x", 2.0)
        timeline.record(3.0, "b", "x", 3.0)
        points = timeline.points(series="x", source="a", since=2.0)
        assert [p.value for p in points] == [2.0]

    def test_series_names_are_sorted_pairs(self):
        timeline = Timeline()
        timeline.record(0.0, "b", "x", 1.0)
        timeline.record(0.0, "a", "y", 1.0)
        assert timeline.series_names() == ["a:y", "b:x"]


class TestCapacityAndMerge:
    def test_drop_newest_counts_overflow(self):
        timeline = Timeline(capacity=2)
        for i in range(4):
            timeline.record(float(i), "s", "x", i)
        assert len(timeline) == 2
        assert timeline.recorded == 4
        assert timeline.dropped == 2
        assert [p.time for p in timeline.points()] == [0.0, 1.0]

    def test_merge_matches_serial_retention(self):
        serial = Timeline(capacity=3)
        for i in range(4):
            serial.record(float(i), "s", "x", i)

        first, second = Timeline(), Timeline()
        first.record(0.0, "s", "x", 0)
        first.record(1.0, "s", "x", 1)
        second.record(2.0, "s", "x", 2)
        second.record(3.0, "s", "x", 3)
        target = Timeline(capacity=3)
        target.merge_from(first)
        target.merge_from(second)

        assert target.points() == serial.points()
        assert target.recorded == serial.recorded
        assert target.dropped == serial.dropped

    def test_dropped_counter_survives_merge_overflow(self):
        source = Timeline(capacity=4)
        for i in range(4):
            source.record(float(i), "s", "x", i)
        target = Timeline(capacity=2)
        target.record(10.0, "s", "x", 10)
        target.merge_from(source)
        assert len(target) == 2
        assert target.recorded == 5
        assert target.dropped == 3

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Timeline(capacity=0)
