"""Unit tests for lifecycle spans and the Chrome trace export."""

import json

import pytest

from repro.obs import SpanLog


class TestBeginEnd:
    def test_span_interval_and_details(self):
        log = SpanLog()
        span = log.begin(1.0, "probe", "probe", "cli", size=100_000)
        assert span.duration is None
        log.end(span, 3.5, completed=True)
        assert span.duration == 2.5
        assert span.detail("size") == 100_000
        assert span.detail("completed") is True
        assert span.detail("absent", default="d") == "d"

    def test_parent_causality(self):
        log = SpanLog()
        tick = log.begin(0.0, "agent poll", "agent", "srv")
        guard = log.begin(0.0, "guard-hold", "guard", "srv", parent=tick)
        assert guard.parent_id == tick.span_id

    def test_end_tolerates_dropped_span(self):
        log = SpanLog(capacity=1)
        log.begin(0.0, "kept", "agent", "srv")
        dropped = log.begin(0.0, "dropped", "agent", "srv")
        assert dropped is None
        log.end(dropped, 1.0)  # must not raise
        assert log.dropped == 1

    def test_filters(self):
        log = SpanLog()
        probe = log.begin(0.0, "p", "probe", "cli")
        log.begin(0.0, "g", "guard", "srv")
        log.end(probe, 1.0)
        assert log.spans(category="probe") == [probe]
        assert [s.name for s in log.spans(source="srv")] == ["g"]
        assert [s.name for s in log.spans(open_only=True)] == ["g"]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            SpanLog(capacity=0)


class TestMerge:
    def test_merge_renumbers_ids_and_parents(self):
        first, second = SpanLog(), SpanLog()
        first.begin(0.0, "a", "agent", "x")
        tick = second.begin(0.0, "tick", "agent", "y")
        second.begin(0.0, "guard", "guard", "y", parent=tick)

        target = SpanLog()
        target.merge_from(first)
        target.merge_from(second)
        spans = target.spans()
        assert [s.span_id for s in spans] == [0, 1, 2]
        assert spans[2].parent_id == spans[1].span_id
        assert target.next_id == 3


class TestChromeTrace:
    def _validated(self, events):
        """Assert the Chrome trace-event schema on every event."""
        for event in events:
            assert isinstance(event["name"], str)
            assert isinstance(event["cat"], str)
            assert event["ph"] in ("X", "B")
            assert isinstance(event["ts"], (int, float)) and event["ts"] >= 0
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int) and event["tid"] >= 1
            assert isinstance(event["args"], dict)
            assert "span_id" in event["args"]
            if event["ph"] == "X":
                assert isinstance(event["dur"], (int, float)) and event["dur"] >= 0
            else:
                assert "dur" not in event
        return events

    def test_closed_and_open_spans_export(self):
        log = SpanLog()
        closed = log.begin(1.0, "probe", "probe", "cli", arm="riptide")
        log.end(closed, 1.25, completed=True)
        log.begin(2.0, "guard-hold", "guard", "srv")
        events = self._validated(log.to_chrome_trace())
        assert len(events) == 2
        x, b = events
        assert (x["ph"], b["ph"]) == ("X", "B")
        assert x["ts"] == pytest.approx(1.0e6)
        assert x["dur"] == pytest.approx(0.25e6)
        assert x["args"]["arm"] == "riptide"

    def test_sources_map_to_deterministic_tracks(self):
        log = SpanLog()
        log.begin(0.0, "b", "agent", "host-b")
        log.begin(0.0, "a", "agent", "host-a")
        events = log.to_chrome_trace()
        # tids follow sorted source order, not begin order.
        assert [e["tid"] for e in events] == [2, 1]

    def test_parent_id_surfaced_in_args(self):
        log = SpanLog()
        tick = log.begin(0.0, "tick", "agent", "srv")
        child = log.begin(0.0, "guard", "guard", "srv", parent=tick)
        log.end(tick, 1.0)
        log.end(child, 1.0)
        events = log.to_chrome_trace()
        assert events[1]["args"]["parent_id"] == tick.span_id
        assert "parent_id" not in events[0]["args"]

    def test_chrome_json_document_shape(self):
        from repro.analysis.export import spans_to_chrome_json

        log = SpanLog()
        span = log.begin(0.0, "p", "probe", "cli")
        log.end(span, 1.0)
        payload = json.loads(spans_to_chrome_json(log))
        assert set(payload) == {"traceEvents", "displayTimeUnit"}
        assert payload["displayTimeUnit"] == "ms"
        self._validated(payload["traceEvents"])
