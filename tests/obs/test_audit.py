"""Tests for the learned-table vs installed-state consistency auditor."""

from types import SimpleNamespace

from repro.core import RiptideAgent, RiptideConfig
from repro.core.observed import LearnedTable
from repro.net import Prefix
from repro.obs import Auditor, Divergence, EventType
from repro.sim import Simulator
from repro.tcp import TcpConfig
from repro.testing import TwoHostTestbed, request_response


class StubAgent:
    """The minimal surface the auditor reads, with installs under test
    control."""

    def __init__(self, sim: Simulator) -> None:
        self.host = SimpleNamespace(sim=sim, name="stub")
        self._table = LearnedTable(ttl=60.0)
        self.installed: dict[Prefix, int] = {}

    def learned_table(self) -> LearnedTable:
        return self._table

    def installed_window(self, destination: Prefix) -> int | None:
        return self.installed.get(destination)


P1 = Prefix.parse("10.0.0.1/32")
P2 = Prefix.parse("10.0.0.2/32")


class TestAuditorUnit:
    def test_consistent_state_is_clean(self, sim):
        agent = StubAgent(sim)
        agent.learned_table().record(P1, 40, now=0.0)
        agent.installed[P1] = 40
        auditor = Auditor(agent)
        assert auditor.check(now=1.0) == []
        assert auditor.checks_run == 1
        assert sim.obs.metrics.counter_value("auditor_checks") == 1
        assert sim.obs.metrics.counter_value("auditor_entries_checked") == 1
        assert sim.obs.metrics.counter_value("auditor_divergences") == 0

    def test_missing_and_mismatched_installs_are_divergences(self, sim):
        agent = StubAgent(sim)
        agent.learned_table().record(P1, 40, now=0.0)  # never installed
        agent.learned_table().record(P2, 50, now=0.0)
        agent.installed[P2] = 25  # installed with the wrong window
        auditor = Auditor(agent)
        divergences = auditor.check(now=1.0)
        assert len(divergences) == 2
        by_destination = {d.destination: d for d in divergences}
        assert by_destination[P1].installed_window is None
        assert by_destination[P2].installed_window == 25
        assert auditor.divergences_found == 2
        assert auditor.last_divergences == divergences
        assert sim.obs.metrics.counter_value("auditor_divergences") == 2
        traced = sim.obs.trace.events(type=EventType.AUDIT_DIVERGENCE)
        assert len(traced) == 2
        assert traced[0].source == "auditor:stub"

    def test_divergence_description(self):
        missing = Divergence(P1, learned_window=40, installed_window=None)
        wrong = Divergence(P1, learned_window=40, installed_window=12)
        assert "missing" in missing.describe()
        assert "installed 12" in wrong.describe()


def make_testbed():
    bed = TwoHostTestbed(
        rtt=0.100,
        client_config=TcpConfig(default_initrwnd=300),
        server_config=TcpConfig(default_initrwnd=300),
    )
    bed.serve_echo()
    return bed


class TestAuditorOnAgent:
    def test_clean_run_never_diverges(self):
        bed = make_testbed()
        agent = RiptideAgent(bed.server, RiptideConfig(update_interval=0.5))
        auditor = Auditor(agent)
        agent.attach_auditor(auditor)
        agent.start()
        request_response(bed, response_bytes=500_000)
        bed.sim.run(until=bed.sim.now + 5.0)
        assert auditor.checks_run > 0
        assert auditor.divergences_found == 0
        assert bed.sim.obs.metrics.counter_value("auditor_divergences") == 0

    def test_route_deleted_under_agent_is_caught_and_healed(self):
        bed = make_testbed()
        agent = RiptideAgent(bed.server, RiptideConfig(update_interval=0.5))
        auditor = Auditor(agent)
        agent.attach_auditor(auditor)
        agent.start()
        request_response(bed, response_bytes=1_000_000)
        bed.sim.run(until=bed.sim.now + 2.0)
        key = Prefix.host(bed.client.address)
        assert bed.server.ip.route_get(bed.client.address) is not None
        assert auditor.divergences_found == 0

        # An operator deletes the route out from under the running agent.
        bed.server.ip.route_del(key)
        bed.sim.run(until=bed.sim.now + 0.6)  # one poll tick

        assert auditor.divergences_found >= 1
        assert bed.sim.obs.metrics.counter_value("auditor_divergences") >= 1
        traced = bed.sim.obs.trace.events(type=EventType.AUDIT_DIVERGENCE)
        assert traced
        assert traced[0].detail("installed") is None

        # The same tick's install pass self-heals the divergence ...
        route = bed.server.ip.route_get(bed.client.address)
        assert route is not None
        assert route.initcwnd == agent.learned_window_for(key)

        # ... so the next audit is clean again.
        found_before = auditor.divergences_found
        bed.sim.run(until=bed.sim.now + 1.0)
        assert auditor.divergences_found == found_before
