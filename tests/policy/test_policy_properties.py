"""Property-style checks for the policy zoo.

Every registered policy — fed randomized-but-seeded sample streams,
interleaved with guard trips, forgets, and resets — must produce windows
that, after :func:`finalize_window`, respect the ``[c_min, c_max]`` clamp
and the post-clamp advisory scaling.
"""

import pytest

from repro.core.combiners import Observation
from repro.core.config import RiptideConfig
from repro.net import Prefix
from repro.policy import finalize_window, make_policy, policy_names
from repro.sim.rand import RandomStreams

CONFIGS = [
    RiptideConfig(),
    RiptideConfig(c_min=4, c_max=32),
    RiptideConfig(c_min=10, c_max=300, alpha=0.5, trend_detection=False),
]

DESTINATIONS = [
    Prefix.parse("10.0.0.0/16"),
    Prefix.parse("10.1.0.0/16"),
    Prefix.parse("10.7.0.0/16"),
    Prefix.parse("192.168.0.0/16"),
]


def _sample_stream(rng, ticks):
    """Yield ``(destination, samples, advisory_scale)`` tuples."""
    for _ in range(ticks):
        destination = DESTINATIONS[rng.randrange(len(DESTINATIONS))]
        samples = [
            Observation(
                cwnd=rng.randint(1, 400),
                srtt=rng.uniform(0.001, 0.4) if rng.random() < 0.5 else None,
            )
            for _ in range(rng.randint(1, 6))
        ]
        advisory_scale = rng.choice([1.0, 1.0, 0.75, 0.5, 0.25])
        yield destination, samples, advisory_scale


@pytest.mark.parametrize("policy_name", policy_names())
@pytest.mark.parametrize("config_index", range(len(CONFIGS)))
def test_policy_respects_clamp_and_advisory(policy_name, config_index):
    config = CONFIGS[config_index]
    policy = make_policy(policy_name, config)
    rng = RandomStreams(1234 + config_index).stream(f"policy:{policy_name}")
    now = 0.0
    for destination, samples, advisory_scale in _sample_stream(rng, 200):
        now += 1.0
        raw = policy.decide(destination, samples, now)
        assert raw > 0.0, f"{policy_name} produced non-positive raw window"
        window, bound = finalize_window(config, raw, advisory_scale)
        assert config.c_min <= window <= config.c_max
        if advisory_scale >= 1.0:
            # Without an advisory the window is exactly the clamped raw value.
            assert window == config.clamp(raw)
            if bound == "c_max":
                assert window == config.c_max
            elif bound == "c_min":
                assert window == config.c_min
        else:
            assert window == max(
                config.c_min, round(config.clamp(raw) * advisory_scale)
            )
        # Lifecycle hooks must never corrupt subsequent decisions.
        roll = rng.random()
        if roll < 0.05:
            policy.on_guard_trip(destination, "loss_spike", now)
        elif roll < 0.08:
            policy.forget(destination)
        elif roll < 0.09:
            policy.reset()


@pytest.mark.parametrize("policy_name", policy_names())
def test_policy_is_deterministic_for_identical_streams(policy_name):
    config = RiptideConfig()

    def run():
        policy = make_policy(policy_name, config)
        rng = RandomStreams(99).stream("replay")
        outputs = []
        now = 0.0
        for destination, samples, _scale in _sample_stream(rng, 100):
            now += 1.0
            outputs.append(policy.decide(destination, samples, now))
        return outputs

    assert run() == run()
