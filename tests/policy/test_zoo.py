"""Unit tests for the window-policy zoo (``repro.policy``)."""

import pytest

from repro.core.combiners import Observation, make_combiner
from repro.core.config import VALID_POLICIES, RiptideConfig
from repro.core.history import make_history_policy
from repro.core.trend import TrendDetector
from repro.net import Prefix
from repro.policy import (
    HOST_CLASS_WINDOWS,
    EwmaPolicy,
    HostClassStaticPolicy,
    PercentilePolicy,
    RttClassPolicy,
    StaticPolicy,
    TunablePolicy,
    finalize_window,
    make_policy,
    policy_names,
)

DEST = Prefix.parse("10.2.0.0/16")
OTHER = Prefix.parse("10.3.0.0/16")


def obs(*cwnds, srtt=None):
    return [Observation(cwnd=c, srtt=srtt) for c in cwnds]


class TestRegistry:
    def test_config_pins_registry_names(self):
        # ``VALID_POLICIES`` is the config-side duplicate of the
        # registry keys (the import would be a cycle); keep them equal.
        assert VALID_POLICIES == policy_names()

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("nope", RiptideConfig())
        with pytest.raises(ValueError, match="unknown policy"):
            RiptideConfig(policy="nope")

    def test_every_name_instantiates_and_decides(self):
        config = RiptideConfig()
        for name in policy_names():
            policy = make_policy(name, config)
            assert policy.name == name
            value = policy.decide(DEST, obs(20, 30), now=1.0)
            assert value >= 1.0


class TestStaticPolicies:
    def test_static_window_is_constant(self):
        policy = StaticPolicy(16)
        assert policy.name == "iw16"
        assert policy.decide(DEST, obs(90, 95), now=0.0) == 16.0
        assert policy.decide(OTHER, obs(1), now=99.0) == 16.0

    def test_static_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            StaticPolicy(0)

    def test_hostclass_split_is_deterministic(self):
        policy = HostClassStaticPolicy()
        # 10.2/16: even second octet -> edge; 10.3/16: odd -> origin.
        assert policy.classify(DEST) == "edge"
        assert policy.classify(OTHER) == "origin"
        assert policy.decide(DEST, obs(50), now=0.0) == float(
            HOST_CLASS_WINDOWS["edge"]
        )
        assert policy.decide(OTHER, obs(50), now=0.0) == float(
            HOST_CLASS_WINDOWS["origin"]
        )


class TestEwmaPolicy:
    def test_matches_manual_pipeline(self):
        # The refactored policy must reproduce the pre-refactor agent
        # arithmetic exactly: combine -> history.update -> trend multiply.
        config = RiptideConfig(alpha=0.7, trend_detection=True)
        policy = EwmaPolicy(config)
        combiner = make_combiner(config.combiner)
        history = make_history_policy(
            config.history, config.alpha, config.history_window
        )
        trend = TrendDetector(
            drop_threshold=config.trend_drop_threshold,
            penalty=config.trend_penalty,
            hold=config.trend_hold,
        )
        streams = [obs(40, 60), obs(80), obs(10), obs(12, 14, 16), obs(90)]
        now = 0.0
        for samples in streams:
            now += 1.0
            candidate = combiner.combine(samples)
            expected = history.update(DEST, candidate)
            expected *= trend.observe(DEST, candidate, now)
            assert policy.decide(DEST, samples, now) == expected

    def test_forget_restarts_history(self):
        policy = EwmaPolicy(RiptideConfig(alpha=0.5))
        policy.decide(DEST, obs(100), now=0.0)
        smoothed = policy.decide(DEST, obs(50), now=1.0)
        assert smoothed == 75.0
        policy.forget(DEST)
        assert policy.decide(DEST, obs(50), now=2.0) == 50.0

    def test_reset_drops_every_destination(self):
        policy = EwmaPolicy(RiptideConfig(alpha=0.5))
        policy.decide(DEST, obs(100), now=0.0)
        policy.decide(OTHER, obs(80), now=0.0)
        policy.reset()
        assert policy.decide(DEST, obs(10), now=1.0) == 10.0
        assert policy.decide(OTHER, obs(10), now=1.0) == 10.0


class TestPercentilePolicy:
    def test_percentile_of_sampled_windows(self):
        policy = PercentilePolicy(90.0)
        assert policy.name == "p90"
        value = policy.decide(DEST, obs(*range(1, 11)), now=0.0)
        # Nearest rank over 1..10 at p90: index round(.9*9)=8 -> 9.
        assert value == 9.0

    def test_keeps_per_destination_samples(self):
        policy = PercentilePolicy(75.0)
        policy.decide(DEST, obs(100, 100, 100), now=0.0)
        assert policy.decide(OTHER, obs(10), now=1.0) == 10.0
        assert policy.decide(DEST, obs(100), now=2.0) == 100.0

    def test_sample_window_bounds_memory(self):
        policy = PercentilePolicy(100.0, sample_window=4)
        policy.decide(DEST, obs(500, 500, 500, 500), now=0.0)
        # Four newer, smaller samples must evict all the 500s.
        assert policy.decide(DEST, obs(7, 7, 7, 7), now=1.0) == 7.0

    def test_forget(self):
        policy = PercentilePolicy(90.0)
        policy.decide(DEST, obs(100), now=0.0)
        policy.forget(DEST)
        assert policy.decide(DEST, obs(5), now=1.0) == 5.0

    def test_invalid_percentile(self):
        with pytest.raises(ValueError):
            PercentilePolicy(0.0)
        with pytest.raises(ValueError):
            PercentilePolicy(101.0)


class TestRttClassPolicy:
    def test_short_rtt_tightens_the_cap(self):
        policy = RttClassPolicy(RiptideConfig())
        value = policy.decide(DEST, obs(90, 90, srtt=0.02), now=0.0)
        assert value == 25.0
        assert policy.cap_for(DEST) == 25

    def test_medium_rtt_cap(self):
        policy = RttClassPolicy(RiptideConfig())
        assert policy.decide(DEST, obs(90, srtt=0.1), now=0.0) == 50.0

    def test_long_rtt_keeps_configured_cmax(self):
        policy = RttClassPolicy(RiptideConfig())
        assert policy.decide(DEST, obs(90, srtt=0.3), now=0.0) == 90.0

    def test_no_rtt_evidence_keeps_cmax(self):
        config = RiptideConfig()
        policy = RttClassPolicy(config)
        assert policy.cap_for(DEST) == config.c_max
        assert policy.decide(DEST, obs(90), now=0.0) == 90.0

    def test_forget_drops_rtt_state(self):
        policy = RttClassPolicy(RiptideConfig())
        policy.decide(DEST, obs(90, srtt=0.02), now=0.0)
        policy.forget(DEST)
        assert policy.cap_for(DEST) == RiptideConfig().c_max


class TestTunablePolicy:
    def test_gain_knob_scales_decisions(self):
        policy = TunablePolicy(RiptideConfig())
        assert policy.decide(DEST, obs(40), now=0.0) == 40.0
        policy.set_knob("gain", 1.5)
        assert policy.decide(OTHER, obs(40), now=0.0) == 60.0

    def test_cap_knob_bounds_decisions(self):
        policy = TunablePolicy(RiptideConfig())
        policy.set_knob("cap", 20.0)
        assert policy.decide(DEST, obs(90), now=0.0) == 20.0

    def test_guard_trip_backs_the_cap_off(self):
        policy = TunablePolicy(RiptideConfig())
        policy.on_guard_trip(DEST, "loss_spike", now=0.0)
        assert policy.knobs()["cap"] == 50.0
        policy.on_guard_trip(DEST, "loss_spike", now=1.0)
        assert policy.knobs()["cap"] == 25.0

    def test_cap_floors_at_cmin(self):
        policy = TunablePolicy(RiptideConfig())
        for i in range(10):
            policy.on_guard_trip(DEST, "loss_spike", now=float(i))
        assert policy.knobs()["cap"] == float(RiptideConfig().c_min)

    def test_trip_free_operation_recovers_the_cap(self):
        policy = TunablePolicy(RiptideConfig())
        policy.on_guard_trip(DEST, "loss_spike", now=0.0)
        assert policy.knobs()["cap"] == 50.0
        policy.decide(DEST, obs(90), now=25.0)
        # Two recovery intervals elapsed -> two additive steps of 4.
        assert policy.knobs()["cap"] == 58.0

    def test_unknown_or_invalid_knob_rejected(self):
        policy = TunablePolicy(RiptideConfig())
        with pytest.raises(ValueError, match="unknown knob"):
            policy.set_knob("beta", 1.0)
        with pytest.raises(ValueError):
            policy.set_knob("gain", 0.0)
        with pytest.raises(ValueError):
            policy.set_knob("cap", 5000.0)

    def test_reset_restores_defaults(self):
        policy = TunablePolicy(RiptideConfig())
        policy.set_knob("gain", 2.0)
        policy.on_guard_trip(DEST, "loss_spike", now=0.0)
        policy.reset()
        assert policy.knobs()["gain"] == 1.0
        assert policy.knobs()["cap"] == float(RiptideConfig().c_max)


class TestFinalizeWindow:
    def test_clamps_and_reports_bound(self):
        config = RiptideConfig(c_min=10, c_max=100)
        assert finalize_window(config, 150.0, 1.0) == (100, "c_max")
        assert finalize_window(config, 3.0, 1.0) == (10, "c_min")
        assert finalize_window(config, 55.4, 1.0) == (55, None)

    def test_advisory_scales_the_clamped_window(self):
        config = RiptideConfig(c_min=10, c_max=100)
        # 150 clamps to 100, then scales to 50 — not round(150 * 0.5).
        assert finalize_window(config, 150.0, 0.5) == (50, "c_max")
        # Scaling floors at c_min.
        assert finalize_window(config, 12.0, 0.25) == (10, None)
