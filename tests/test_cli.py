"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import _normalize_experiment_id, main
from repro.experiments.registry import EXPERIMENTS, Experiment


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in ("fig02", "fig10", "table2", "edge_cases"):
            assert experiment_id in out

    def test_marks_simulation_experiments(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        assert "[simulation]" in out
        assert "[model" in out


class TestDescribe:
    def test_describe_prints_docstring(self, capsys):
        assert main(["describe", "fig05"]) == 0
        out = capsys.readouterr().out
        assert "125" in out
        assert "fig05" in out


class TestRun:
    def test_run_model_experiment(self, capsys):
        assert main(["run", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "completed in" in out

    def test_run_with_fast_flag(self, capsys):
        assert main(["run", "fig03", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out

    def test_unknown_experiment_errors(self, capsys):
        assert main(["run", "fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])


class TestRunWorkers:
    def test_workers_forwarded_to_supporting_experiment(self, capsys, monkeypatch):
        seen = {}

        class _Result:
            def report(self):
                return "workers-report"

        def run(workers=1):
            seen["workers"] = workers
            return _Result()

        monkeypatch.setitem(
            EXPERIMENTS,
            "tiny_w",
            Experiment("tiny_w", "workers-aware", run, True, supports_workers=True),
        )
        assert main(["run", "tiny_w", "--workers", "3"]) == 0
        assert seen["workers"] == 3
        assert "workers-report" in capsys.readouterr().out

    def test_workers_noted_and_ignored_without_support(self, capsys, monkeypatch):
        class _Result:
            def report(self):
                return "serial-report"

        monkeypatch.setitem(
            EXPERIMENTS,
            "tiny_s",
            Experiment("tiny_s", "serial-only", lambda: _Result(), False),
        )
        assert main(["run", "tiny_s", "--workers", "4"]) == 0
        captured = capsys.readouterr()
        assert "running serially" in captured.err
        assert "serial-report" in captured.out


def _tiny_simulation():
    """A test-only simulation-backed experiment: one small transfer."""
    from repro.testing import TwoHostTestbed, request_response

    bed = TwoHostTestbed(rtt=0.050, bandwidth_bps=1e9)
    bed.serve_echo()
    request_response(bed, response_bytes=50_000)


@pytest.fixture
def tiny_experiment(monkeypatch):
    monkeypatch.setitem(
        EXPERIMENTS,
        "tiny",
        Experiment("tiny", "test-only transfer", _tiny_simulation, True),
    )


class TestMetrics:
    def test_metrics_captures_a_simulation_run(self, capsys, tiny_experiment):
        assert main(["metrics", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "tcp_connections_opened" in out
        assert "sim_events_processed" in out
        assert "trace event totals" in out
        assert "conn_opened" in out

    def test_metrics_json_is_one_document(self, capsys, tiny_experiment):
        assert main(["metrics", "tiny", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "tiny"
        metric_names = {row["metric"] for row in payload["metrics"]}
        assert "tcp_connections_opened" in metric_names
        assert payload["trace"]["totals"]["conn_opened"] >= 1

    def test_metrics_csv_written(self, capsys, tiny_experiment, tmp_path):
        target = tmp_path / "metrics.csv"
        assert main(["metrics", "tiny", "--csv", str(target)]) == 0
        lines = target.read_text().splitlines()
        assert lines[0] == "kind,metric,labels,field,value"
        assert any("tcp_connections_opened" in line for line in lines[1:])

    def test_metrics_trace_csv_written(self, capsys, tiny_experiment, tmp_path):
        target = tmp_path / "trace.csv"
        assert main(["metrics", "tiny", "--trace-csv", str(target)]) == 0
        lines = target.read_text().splitlines()
        assert lines[0] == "time,type,source,details"
        assert any("conn_opened" in line for line in lines[1:])

    def test_metrics_warns_on_trace_truncation(self, capsys, monkeypatch):
        from repro.obs import EventType

        def noisy():
            from repro.obs import active_instrumentation

            trace = active_instrumentation().trace
            for i in range(trace.capacity + 5):
                trace.record(float(i), EventType.CONN_OPENED, "x")

        monkeypatch.setitem(
            EXPERIMENTS,
            "noisy",
            Experiment("noisy", "test-only trace flood", noisy, False),
        )
        assert main(["metrics", "noisy"]) == 0
        err = capsys.readouterr().err
        assert "warning: trace ring dropped 5" in err

    def test_metrics_model_experiment_has_no_instruments(self, capsys):
        assert main(["metrics", "table2"]) == 0
        out = capsys.readouterr().out
        assert "no metrics registered" in out

    def test_unknown_experiment_errors(self, capsys):
        assert main(["metrics", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_prom_text_exposition(self, capsys, tiny_experiment):
        assert main(["metrics", "tiny", "--prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE tcp_connections_opened counter" in out
        assert "tcp_connections_opened 2" in out
        assert out.endswith("\n")

    def test_json_and_prom_are_exclusive(self, capsys, tiny_experiment):
        assert main(["metrics", "tiny", "--json", "--prom"]) == 2
        assert "not both" in capsys.readouterr().err

    def test_accepts_harness_module_names(self):
        assert _normalize_experiment_id("fig10_cmax_sweep") == "fig10"
        assert _normalize_experiment_id("fig10") == "fig10"
        assert _normalize_experiment_id("nope") == "nope"


class TestFlowsVerb:
    def test_flows_summary_of_a_simulation_run(self, capsys, tiny_experiment):
        assert main(["flows", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "flow records: tiny" in out
        # One transfer = two records, one per socket side.
        assert "recorded: 2" in out
        assert "initial cwnd source: default=2" in out

    def test_flows_json_lists_every_record(self, capsys, tiny_experiment):
        assert main(["flows", "tiny", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["recorded"] == 2
        sides = {flow["is_client"] for flow in payload["flows"]}
        assert sides == {True, False}
        for flow in payload["flows"]:
            assert flow["established_at"] is not None
            assert flow["syn_rtt"] > 0

    def test_flows_jsonl_written(self, capsys, tiny_experiment, tmp_path):
        target = tmp_path / "flows.jsonl"
        assert main(["flows", "tiny", "--jsonl", str(target)]) == 0
        lines = target.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["flow_id"] == 0

    def test_time_window_filters_records(self, capsys, tiny_experiment):
        # The client flow opens at t=0, the server side ~one half-RTT
        # later; an --until between the two keeps only the first.  Both
        # stay open to the end of the run, so --since never drops them.
        assert main(["flows", "tiny", "--json", "--until", "0.01"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["recorded"] == 2
        assert payload["selected"] == 1
        assert [f["flow_id"] for f in payload["flows"]] == [0]

    def test_time_window_noted_in_summary(self, capsys, tiny_experiment):
        assert main(["flows", "tiny", "--since", "0", "--until", "999"]) == 0
        out = capsys.readouterr().out
        assert "window [0.0, 999.0]s: 2 flows" in out

    def test_unknown_experiment_errors(self, capsys):
        assert main(["flows", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestReportVerb:
    def test_report_renders_the_cause_taxonomy(self, capsys, tiny_experiment):
        assert main(["report", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Tail-latency attribution: tiny" in out
        assert "genuinely_fast_path" in out
        assert "flows: 2 recorded" in out

    def test_report_json_and_artifacts(self, capsys, tiny_experiment, tmp_path):
        out_path = tmp_path / "report.json"
        spans_path = tmp_path / "spans.json"
        timeline_path = tmp_path / "timeline.csv"
        assert (
            main(
                [
                    "report",
                    "tiny",
                    "--json",
                    "--out",
                    str(out_path),
                    "--spans",
                    str(spans_path),
                    "--timeline-csv",
                    str(timeline_path),
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "tiny"
        assert json.loads(out_path.read_text()) == payload
        chrome = json.loads(spans_path.read_text())
        assert "traceEvents" in chrome
        assert timeline_path.read_text().startswith("time,source,series,value")

    def test_time_window_recorded_in_report(self, capsys, tiny_experiment):
        assert main(["report", "tiny", "--json", "--until", "999"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["window"] == {"since": None, "until": 999.0}
        assert payload["alerts"]["fired"] == 0

    def test_unknown_experiment_errors(self, capsys):
        assert main(["report", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestAlertsVerb:
    def test_markdown_report_by_default(self, capsys, tiny_experiment):
        assert main(["alerts", "tiny"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# SLO alert report")
        assert "_No alerts._" in out

    def test_json_and_out_agree(self, capsys, tiny_experiment, tmp_path):
        target = tmp_path / "alerts.json"
        assert main(["alerts", "tiny", "--json", "--out", str(target)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "tiny"
        assert payload["counts"]["fired"] == 0
        assert {row["slo"] for row in payload["slos"]} == {
            "probe_latency_p90",
            "retransmit_ratio",
            "guard_withdrawal_rate",
            "route_staleness",
        }
        assert json.loads(target.read_text()) == payload

    def test_markdown_artifact_written(self, capsys, tiny_experiment, tmp_path):
        target = tmp_path / "alerts.md"
        assert main(["alerts", "tiny", "--markdown", str(target)]) == 0
        assert "# SLO alert report" in target.read_text()

    def test_check_requires_a_fault_scenario(self, capsys, tiny_experiment):
        assert main(["alerts", "tiny", "--check"]) == 2
        assert "fault scenario" in capsys.readouterr().err

    def test_unknown_experiment_errors(self, capsys):
        assert main(["alerts", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestWatchVerb:
    def test_renders_one_line_per_frame(self, capsys, tiny_experiment):
        assert main(["watch", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "== watch: tiny (1 frames) ==" in out
        assert "alerts: 0p/0f" in out

    def test_json_frames(self, capsys, tiny_experiment):
        assert main(["watch", "tiny", "--json", "--interval", "0.1"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "tiny"
        assert payload["frames"]
        assert payload["frames"][0]["index"] == 0

    def test_rejects_bad_interval_and_speed(self, capsys, tiny_experiment):
        assert main(["watch", "tiny", "--interval", "0"]) == 2
        assert "--interval" in capsys.readouterr().err
        assert main(["watch", "tiny", "--speed", "-1"]) == 2
        assert "--speed" in capsys.readouterr().err


class TestFaultsVerb:
    def test_lists_every_scenario_with_its_timeline(self, capsys):
        assert main(["faults"]) == 0
        out = capsys.readouterr().out
        assert "chaos_lossy_agent" in out
        assert "chaos_partition" in out
        assert "chaos_flaky_tools" in out
        assert "loss_storm" in out  # timelines are rendered
        assert "run --faults" in out  # usage hint

    def test_duration_scales_the_timeline(self, capsys):
        assert main(["faults", "--duration", "45"]) == 0
        out = capsys.readouterr().out
        assert "timeline over 45s" in out


class TestRunFaults:
    def test_runs_the_scenario_and_prints_the_report(
        self, capsys, monkeypatch
    ):
        import repro.experiments.chaos as chaos

        calls = {}

        class _Result:
            def report(self):
                return "chaos-report"

        def fake_run(config, workers=1):
            calls["config"] = config
            calls["workers"] = workers
            return _Result()

        monkeypatch.setattr(chaos, "run_chaos_study", fake_run)
        assert main(
            ["run", "--faults", "chaos_partition", "--fast", "--workers", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "chaos-report" in out
        assert calls["config"].scenario == "chaos_partition"
        assert calls["config"].duration == 30.0  # the --fast preset
        assert calls["workers"] == 2

    def test_unknown_scenario_errors(self, capsys):
        assert main(["run", "--faults", "chaos_nope"]) == 2
        err = capsys.readouterr().err
        assert "chaos_lossy_agent" in err  # alternatives are listed

    def test_experiment_id_and_faults_are_exclusive(self, capsys):
        assert main(["run", "fig03", "--faults", "chaos_partition"]) == 2
        assert "not both" in capsys.readouterr().err

    def test_run_without_id_or_faults_errors(self, capsys):
        assert main(["run"]) == 2
        assert "--faults" in capsys.readouterr().err
