"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in ("fig02", "fig10", "table2", "edge_cases"):
            assert experiment_id in out

    def test_marks_simulation_experiments(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        assert "[simulation]" in out
        assert "[model" in out


class TestDescribe:
    def test_describe_prints_docstring(self, capsys):
        assert main(["describe", "fig05"]) == 0
        out = capsys.readouterr().out
        assert "125" in out
        assert "fig05" in out


class TestRun:
    def test_run_model_experiment(self, capsys):
        assert main(["run", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "completed in" in out

    def test_run_with_fast_flag(self, capsys):
        assert main(["run", "fig03", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out

    def test_unknown_experiment_errors(self, capsys):
        assert main(["run", "fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])
