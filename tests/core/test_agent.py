"""Integration tests for the Riptide agent (Algorithm 1) on live hosts."""

import pytest

from repro.core import RiptideAgent, RiptideConfig
from repro.net import Prefix
from repro.tcp import TcpConfig
from repro.testing import TwoHostTestbed, request_response

RTT = 0.100


def make_testbed():
    bed = TwoHostTestbed(
        rtt=RTT,
        client_config=TcpConfig(default_initrwnd=300),
        server_config=TcpConfig(default_initrwnd=300),
    )
    bed.serve_echo()
    return bed


class TestLearningLoop:
    def test_agent_learns_from_open_connection(self):
        bed = make_testbed()
        agent = RiptideAgent(bed.server, RiptideConfig(update_interval=0.5))
        agent.start()
        # A large transfer grows the server-side window well past 10.
        request_response(bed, response_bytes=500_000)
        bed.sim.run(until=bed.sim.now + 2.0)
        key = Prefix.host(bed.client.address)
        learned = agent.learned_window_for(key)
        assert learned is not None
        assert learned > 10

    def test_learned_route_installed_in_fib(self):
        bed = make_testbed()
        agent = RiptideAgent(bed.server, RiptideConfig(update_interval=0.5))
        agent.start()
        request_response(bed, response_bytes=500_000)
        bed.sim.run(until=bed.sim.now + 2.0)
        route = bed.server.ip.route_get(bed.client.address)
        assert route is not None
        assert route.initcwnd == agent.learned_window_for(
            Prefix.host(bed.client.address)
        )

    def test_next_connection_starts_at_learned_window(self):
        bed = make_testbed()
        agent = RiptideAgent(bed.server, RiptideConfig(update_interval=0.5))
        agent.start()
        cold = request_response(bed, response_bytes=300_000)
        bed.sim.run(until=bed.sim.now + 2.0)
        bed.client.sockets()[0].close() if bed.client.sockets() else None
        bed.sim.run(until=bed.sim.now + 1.0)
        warm = request_response(bed, response_bytes=300_000)
        assert warm.total_time < cold.total_time

    def test_clamping_applies(self):
        bed = make_testbed()
        agent = RiptideAgent(
            bed.server, RiptideConfig(update_interval=0.5, c_max=25, c_min=10)
        )
        agent.start()
        request_response(bed, response_bytes=1_000_000)
        bed.sim.run(until=bed.sim.now + 2.0)
        learned = agent.learned_window_for(Prefix.host(bed.client.address))
        assert learned == 25  # clamped despite a much larger live window

    def test_c_min_floor(self):
        bed = make_testbed()
        agent = RiptideAgent(
            bed.server, RiptideConfig(update_interval=0.5, c_min=15, c_max=100)
        )
        agent.start()
        request_response(bed, response_bytes=5_000)  # tiny transfer, cwnd ~10
        bed.sim.run(until=bed.sim.now + 2.0)
        learned = agent.learned_window_for(Prefix.host(bed.client.address))
        assert learned is not None
        assert learned >= 15


class TestTtlExpiry:
    def test_route_expires_after_ttl(self):
        bed = make_testbed()
        agent = RiptideAgent(
            bed.server, RiptideConfig(update_interval=0.5, ttl=3.0)
        )
        agent.start()
        request_response(bed, response_bytes=300_000)
        bed.sim.run(until=bed.sim.now + 1.0)
        assert bed.server.ip.route_get(bed.client.address) is not None
        # Close everything; with no connections the entry must expire.
        for sock in list(bed.client.sockets()) + list(bed.server.sockets()):
            sock.abort()
        bed.sim.run(until=bed.sim.now + 5.0)
        assert bed.server.ip.route_get(bed.client.address) is None
        assert agent.stats.routes_expired >= 1

    def test_expiry_restores_default_initcwnd(self):
        bed = make_testbed()
        agent = RiptideAgent(
            bed.server, RiptideConfig(update_interval=0.5, ttl=3.0)
        )
        agent.start()
        request_response(bed, response_bytes=300_000)
        bed.sim.run(until=bed.sim.now + 1.0)
        for sock in list(bed.client.sockets()) + list(bed.server.sockets()):
            sock.abort()
        bed.sim.run(until=bed.sim.now + 5.0)
        assert bed.server.initcwnd_for(bed.client.address) == 10

    def test_activity_keeps_entry_alive(self):
        bed = make_testbed()
        agent = RiptideAgent(
            bed.server, RiptideConfig(update_interval=0.5, ttl=3.0)
        )
        agent.start()
        request_response(bed, response_bytes=300_000)
        # Connection stays open and established: entry must survive > ttl.
        bed.sim.run(until=bed.sim.now + 10.0)
        assert bed.server.ip.route_get(bed.client.address) is not None


class TestAgentLifecycle:
    def test_stop_removes_routes(self):
        bed = make_testbed()
        agent = RiptideAgent(bed.server, RiptideConfig(update_interval=0.5))
        agent.start()
        request_response(bed, response_bytes=300_000)
        bed.sim.run(until=bed.sim.now + 2.0)
        assert len(bed.server.route_table) == 1
        agent.stop()
        assert len(bed.server.route_table) == 0
        assert not agent.running

    def test_stop_clears_learned_state(self):
        bed = make_testbed()
        agent = RiptideAgent(bed.server, RiptideConfig(update_interval=0.5))
        agent.start()
        request_response(bed, response_bytes=300_000)
        bed.sim.run(until=bed.sim.now + 2.0)
        assert len(agent.learned_table()) == 1
        agent.stop()
        assert len(agent.learned_table()) == 0
        assert agent.stats.routes_withdrawn == 1

    def test_restart_reinstalls_routes(self):
        """Regression: ``stop()`` used to strand learned entries.

        The routes were withdrawn but the learned table kept the old
        windows, so a restarted agent recomputing the *same* window saw
        "no change" and never reinstalled the route — connections
        silently ran at the kernel default.
        """
        bed = make_testbed()
        agent = RiptideAgent(bed.server, RiptideConfig(update_interval=0.5))
        agent.start()
        # A large transfer pushes the live window far past c_max, so the
        # learned window sits pinned at exactly c_max across ticks — the
        # stable-window case that masked the missing reinstall.
        request_response(bed, response_bytes=1_000_000)
        bed.sim.run(until=bed.sim.now + 2.0)
        key = Prefix.host(bed.client.address)
        window = agent.learned_window_for(key)
        assert window == agent.config.c_max

        agent.stop()
        assert bed.server.ip.route_get(bed.client.address) is None

        agent.start()
        bed.sim.run(until=bed.sim.now + 1.0)
        route = bed.server.ip.route_get(bed.client.address)
        assert route is not None
        assert route.initcwnd == window

    def test_stop_can_keep_routes(self):
        bed = make_testbed()
        agent = RiptideAgent(bed.server, RiptideConfig(update_interval=0.5))
        agent.start()
        request_response(bed, response_bytes=300_000)
        bed.sim.run(until=bed.sim.now + 2.0)
        agent.stop(remove_routes=False)
        assert len(bed.server.route_table) == 1

    def test_stats_track_operation(self):
        bed = make_testbed()
        agent = RiptideAgent(bed.server, RiptideConfig(update_interval=0.5))
        agent.start()
        request_response(bed, response_bytes=300_000)
        bed.sim.run(until=bed.sim.now + 2.0)
        assert agent.stats.polls > 0
        assert agent.stats.connections_observed > 0
        assert agent.stats.routes_installed >= 1

    def test_window_history_recording(self):
        bed = make_testbed()
        agent = RiptideAgent(
            bed.server,
            RiptideConfig(update_interval=0.5),
            record_window_history=True,
        )
        agent.start()
        request_response(bed, response_bytes=300_000)
        bed.sim.run(until=bed.sim.now + 2.0)
        assert len(agent.stats.window_history) > 0

    def test_window_history_limit_bounds_growth(self):
        bed = make_testbed()
        agent = RiptideAgent(
            bed.server,
            RiptideConfig(update_interval=0.25),
            record_window_history=True,
            window_history_limit=5,
        )
        agent.start()
        request_response(bed, response_bytes=1_000_000)
        bed.sim.run(until=bed.sim.now + 10.0)
        assert agent.stats.polls > 5  # enough ticks to overflow the cap
        assert len(agent.stats.window_history) == 5
        # The bounded history keeps the newest samples, oldest evicted.
        times = [t for t, _ in agent.stats.window_history]
        assert times == sorted(times)
        assert times[0] > 0.25

    def test_unbounded_history_keeps_everything(self):
        bed = make_testbed()
        agent = RiptideAgent(
            bed.server,
            RiptideConfig(update_interval=0.25),
            record_window_history=True,
        )
        agent.start()
        request_response(bed, response_bytes=1_000_000)
        bed.sim.run(until=bed.sim.now + 10.0)
        assert len(agent.stats.window_history) > 5

    def test_invalid_window_history_limit_rejected(self):
        bed = make_testbed()
        with pytest.raises(ValueError, match="window_history_limit"):
            RiptideAgent(
                bed.server,
                RiptideConfig(),
                window_history_limit=0,
            )


class TestGranularityIntegration:
    def test_prefix_route_covers_whole_zone(self):
        bed = make_testbed()
        agent = RiptideAgent(
            bed.server,
            RiptideConfig(update_interval=0.5, granularity="prefix", prefix_length=24),
        )
        agent.start()
        request_response(bed, response_bytes=300_000)
        bed.sim.run(until=bed.sim.now + 2.0)
        # The learned route is 10.0.0.0/24, so any host in the client
        # zone resolves to the learned window.
        from repro.net import IPv4Address

        other_host = IPv4Address("10.0.0.99")
        assert bed.server.initcwnd_for(other_host) > 10

    def test_ewma_converges_upward_over_ticks(self):
        bed = make_testbed()
        agent = RiptideAgent(
            bed.server,
            RiptideConfig(update_interval=0.25, alpha=0.7),
            record_window_history=True,
        )
        agent.start()
        request_response(bed, response_bytes=1_000_000)
        bed.sim.run(until=bed.sim.now + 5.0)
        windows = [w for _, w in agent.stats.window_history]
        # The EWMA walks up toward the observed large window.
        assert windows[-1] >= windows[0]
        assert windows[-1] > 10
