"""Tests for the kernel-mode Riptide variant (Section V)."""

import pytest

from repro.core import KernelModeAgent, RiptideAgent, RiptideConfig
from repro.net import Prefix
from repro.tcp import TcpConfig
from repro.testing import TwoHostTestbed, request_response


def make_testbed():
    bed = TwoHostTestbed(
        rtt=0.080,
        client_config=TcpConfig(default_initrwnd=300),
        server_config=TcpConfig(default_initrwnd=300),
    )
    bed.serve_echo()
    return bed


class TestKernelModeLearning:
    def test_learns_and_applies_without_routes(self):
        bed = make_testbed()
        agent = KernelModeAgent(bed.server, RiptideConfig(update_interval=0.5))
        agent.start()
        request_response(bed, response_bytes=500_000)
        bed.sim.run(until=bed.sim.now + 2.0)
        # The window applies through the hook...
        assert bed.server.initcwnd_for(bed.client.address) > 10
        # ...while the route table never sees a single command.
        assert len(bed.server.route_table) == 0
        assert bed.server.ip.commands_issued == 0

    def test_next_connection_jump_started(self):
        bed = make_testbed()
        agent = KernelModeAgent(bed.server, RiptideConfig(update_interval=0.5))
        agent.start()
        cold = request_response(bed, response_bytes=300_000)
        bed.sim.run(until=bed.sim.now + 2.0)
        for sock in list(bed.client.sockets()):
            sock.close()
        bed.sim.run(until=bed.sim.now + 1.0)
        warm = request_response(bed, response_bytes=300_000)
        assert warm.total_time < cold.total_time

    def test_equivalent_learning_to_user_space(self):
        """Both variants run the same Algorithm 1 and learn the same value."""
        def learned_with(agent_cls):
            bed = make_testbed()
            agent = agent_cls(bed.server, RiptideConfig(update_interval=0.5))
            agent.start()
            request_response(bed, response_bytes=500_000)
            bed.sim.run(until=bed.sim.now + 2.0)
            return agent.learned_window_for(Prefix.host(bed.client.address))

        assert learned_with(KernelModeAgent) == learned_with(RiptideAgent)

    def test_ttl_expiry_restores_default(self):
        bed = make_testbed()
        agent = KernelModeAgent(
            bed.server, RiptideConfig(update_interval=0.5, ttl=3.0)
        )
        agent.start()
        request_response(bed, response_bytes=300_000)
        bed.sim.run(until=bed.sim.now + 1.0)
        assert bed.server.initcwnd_for(bed.client.address) > 10
        for sock in list(bed.client.sockets()) + list(bed.server.sockets()):
            sock.abort()
        bed.sim.run(until=bed.sim.now + 5.0)
        assert bed.server.initcwnd_for(bed.client.address) == 10


class TestHookLifecycle:
    def test_stop_releases_hook(self):
        bed = make_testbed()
        agent = KernelModeAgent(bed.server, RiptideConfig(update_interval=0.5))
        agent.start()
        assert bed.server.initcwnd_hook is not None
        agent.stop()
        assert bed.server.initcwnd_hook is None

    def test_double_agent_rejected(self):
        bed = make_testbed()
        first = KernelModeAgent(bed.server, RiptideConfig())
        second = KernelModeAgent(bed.server, RiptideConfig())
        first.start()
        with pytest.raises(RuntimeError, match="already has an initcwnd hook"):
            second.start()

    def test_restart_same_agent_allowed(self):
        bed = make_testbed()
        agent = KernelModeAgent(bed.server, RiptideConfig())
        agent.start()
        agent.stop()
        agent.start()
        assert agent.running

    def test_hook_miss_falls_through_to_routes(self):
        bed = make_testbed()
        agent = KernelModeAgent(bed.server, RiptideConfig())
        agent.start()
        # No learning yet; a manually installed route still applies.
        bed.server.ip.route_replace("10.0.0.0/24", initcwnd=33)
        assert bed.server.initcwnd_for(bed.client.address) == 33
