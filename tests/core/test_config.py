"""Unit tests for RiptideConfig (Table I parameters)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import RiptideConfig


class TestDefaults:
    def test_paper_defaults(self):
        config = RiptideConfig()
        assert config.update_interval == 1.0  # i_u in the evaluation
        assert config.ttl == 90.0  # t in the implementation
        assert config.c_max == 100  # chosen after Figure 10
        assert config.c_min == 10  # the Linux default window
        assert config.combiner == "average"
        assert config.history == "ewma"


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha": -0.1},
            {"alpha": 1.0},
            {"update_interval": 0.0},
            {"ttl": -1.0},
            {"c_min": 0},
            {"c_max": 5, "c_min": 10},
            {"combiner": "median"},
            {"history": "kalman"},
            {"history_window": 0},
            {"granularity": "asn"},
            {"prefix_length": 40},
            {"timeline_sample_interval": 0.0},
            {"timeline_sample_interval": -2.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RiptideConfig(**kwargs)

    def test_valid_variants_accepted(self):
        RiptideConfig(combiner="max", history="none", granularity="prefix")
        RiptideConfig(combiner="traffic_weighted", history="windowed")
        assert RiptideConfig(timeline_sample_interval=0.5).timeline_sample_interval == 0.5


class TestClamp:
    def test_clamps_to_bounds(self):
        config = RiptideConfig(c_min=10, c_max=100)
        assert config.clamp(5.0) == 10
        assert config.clamp(500.0) == 100
        assert config.clamp(55.4) == 55

    def test_rounds_to_nearest(self):
        config = RiptideConfig()
        assert config.clamp(54.5) in (54, 55)  # banker's rounding is fine
        assert config.clamp(54.9) == 55


@given(
    value=st.floats(min_value=-1e6, max_value=1e6),
    c_min=st.integers(min_value=1, max_value=50),
    extra=st.integers(min_value=0, max_value=400),
)
def test_clamp_always_within_bounds(value, c_min, extra):
    config = RiptideConfig(c_min=c_min, c_max=c_min + extra)
    clamped = config.clamp(value)
    assert config.c_min <= clamped <= config.c_max
