"""Unit and property tests for history policies."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import EwmaHistory, NoHistory, WindowedHistory, make_history_policy


class TestEwmaHistory:
    def test_first_value_passes_through(self):
        assert EwmaHistory(0.7).update("d", 50.0) == 50.0

    def test_paper_weighting(self):
        """alpha weight to history, 1 - alpha to the new value."""
        history = EwmaHistory(0.7)
        history.update("d", 100.0)
        assert history.update("d", 0.0) == pytest.approx(70.0)

    def test_smooths_spikes(self):
        history = EwmaHistory(0.9)
        history.update("d", 10.0)
        spiked = history.update("d", 1000.0)
        assert spiked < 150.0  # dampened, not a jump to 1000

    def test_prevents_plummeting(self):
        """Paper: history prevents the window from plummeting when all
        connections to a destination close or reset."""
        history = EwmaHistory(0.7)
        value = 100.0
        history.update("d", value)
        dropped = history.update("d", 10.0)
        assert dropped > 70.0

    def test_keys_are_independent(self):
        history = EwmaHistory(0.5)
        history.update("a", 100.0)
        assert history.update("b", 10.0) == 10.0

    def test_forget_resets_key(self):
        history = EwmaHistory(0.5)
        history.update("d", 100.0)
        history.forget("d")
        assert history.update("d", 10.0) == 10.0
        assert history.tracked_keys() == {"d"}

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            EwmaHistory(1.0)
        with pytest.raises(ValueError):
            EwmaHistory(-0.1)


class TestWindowedHistory:
    def test_mean_of_window(self):
        history = WindowedHistory(3)
        history.update("d", 10.0)
        history.update("d", 20.0)
        assert history.update("d", 30.0) == pytest.approx(20.0)

    def test_window_slides(self):
        history = WindowedHistory(2)
        history.update("d", 10.0)
        history.update("d", 20.0)
        assert history.update("d", 40.0) == pytest.approx(30.0)

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            WindowedHistory(0)

    def test_forget(self):
        history = WindowedHistory(5)
        history.update("d", 100.0)
        history.forget("d")
        assert history.update("d", 10.0) == 10.0


class TestNoHistory:
    def test_always_newest(self):
        history = NoHistory()
        history.update("d", 100.0)
        assert history.update("d", 7.0) == 7.0

    def test_tracked_keys(self):
        history = NoHistory()
        history.update("a", 1.0)
        history.update("b", 2.0)
        history.forget("a")
        assert history.tracked_keys() == {"b"}


class TestFactory:
    def test_builds_all(self):
        assert isinstance(make_history_policy("ewma", 0.7, 5), EwmaHistory)
        assert isinstance(make_history_policy("windowed", 0.7, 5), WindowedHistory)
        assert isinstance(make_history_policy("none", 0.7, 5), NoHistory)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_history_policy("kalman", 0.7, 5)

    def test_unknown_error_lists_known_names(self):
        with pytest.raises(
            ValueError,
            match=r"unknown history policy 'kalman' "
            r"\(known: ewma, none, windowed\)",
        ) as excinfo:
            make_history_policy("kalman", 0.7, 5)
        # ``from None``: the internal KeyError must not leak into the
        # traceback a user sees for a config typo.
        assert excinfo.value.__suppress_context__
        assert excinfo.value.__cause__ is None


values = st.lists(st.floats(min_value=1.0, max_value=1000.0), min_size=1, max_size=50)


@given(alpha=st.floats(min_value=0.0, max_value=0.99), sequence=values)
def test_ewma_stays_within_seen_range(alpha, sequence):
    """The EWMA never escapes the convex hull of its inputs."""
    history = EwmaHistory(alpha)
    low, high = min(sequence), max(sequence)
    for value in sequence:
        result = history.update("d", value)
        assert low - 1e-6 <= result <= high + 1e-6


@given(window=st.integers(min_value=1, max_value=10), sequence=values)
def test_windowed_stays_within_recent_range(window, sequence):
    history = WindowedHistory(window)
    for i, value in enumerate(sequence):
        result = history.update("d", value)
        recent = sequence[max(0, i - window + 1) : i + 1]
        assert min(recent) - 1e-6 <= result <= max(recent) + 1e-6
