"""Unit tests for the learned table and destination grouping."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import DestinationGrouper, LearnedTable
from repro.net import IPv4Address, Prefix


class TestLearnedTable:
    def test_record_and_get(self):
        table = LearnedTable(ttl=90.0)
        dest = Prefix.parse("10.0.0.1/32")
        entry = table.record(dest, 80, now=10.0)
        assert entry.expires_at == 100.0
        assert table.get(dest).window == 80
        assert dest in table

    def test_refresh_resets_ttl(self):
        table = LearnedTable(ttl=90.0)
        dest = Prefix.parse("10.0.0.1/32")
        table.record(dest, 80, now=0.0)
        table.record(dest, 85, now=50.0)
        assert table.get(dest).expires_at == 140.0

    def test_pop_expired(self):
        table = LearnedTable(ttl=90.0)
        fresh = Prefix.parse("10.0.0.1/32")
        stale = Prefix.parse("10.0.0.2/32")
        table.record(stale, 80, now=0.0)
        table.record(fresh, 90, now=60.0)
        expired = table.pop_expired(now=95.0)
        assert [e.destination for e in expired] == [stale]
        assert stale not in table
        assert fresh in table

    def test_entries_sorted_by_recency(self):
        table = LearnedTable(ttl=90.0)
        older = Prefix.parse("10.0.0.1/32")
        newer = Prefix.parse("10.0.0.2/32")
        table.record(older, 10, now=0.0)
        table.record(newer, 20, now=5.0)
        assert [e.destination for e in table.entries()] == [newer, older]

    def test_windows_view(self):
        table = LearnedTable(ttl=90.0)
        dest = Prefix.parse("10.0.0.1/32")
        table.record(dest, 77, now=0.0)
        assert table.windows() == {dest: 77}

    def test_invalid_ttl_rejected(self):
        with pytest.raises(ValueError):
            LearnedTable(ttl=0.0)

    def test_invalid_window_rejected(self):
        table = LearnedTable(ttl=90.0)
        with pytest.raises(ValueError):
            table.record(Prefix.parse("10.0.0.1/32"), 0, now=0.0)

    def test_len(self):
        table = LearnedTable(ttl=90.0)
        table.record(Prefix.parse("10.0.0.1/32"), 10, now=0.0)
        table.record(Prefix.parse("10.0.0.2/32"), 10, now=0.0)
        assert len(table) == 2


class TestDestinationGrouper:
    def test_host_granularity_gives_slash_32(self):
        grouper = DestinationGrouper("host")
        key = grouper.key_for(IPv4Address("10.5.6.7"))
        assert key == Prefix.parse("10.5.6.7/32")

    def test_prefix_granularity_masks(self):
        grouper = DestinationGrouper("prefix", prefix_length=16)
        key = grouper.key_for(IPv4Address("10.5.6.7"))
        assert key == Prefix.parse("10.5.0.0/16")

    def test_hosts_in_same_prefix_share_key(self):
        grouper = DestinationGrouper("prefix", prefix_length=24)
        a = grouper.key_for(IPv4Address("10.5.6.7"))
        b = grouper.key_for(IPv4Address("10.5.6.200"))
        assert a == b

    def test_invalid_granularity_rejected(self):
        with pytest.raises(ValueError):
            DestinationGrouper("asn")

    def test_invalid_prefix_length_rejected(self):
        with pytest.raises(ValueError):
            DestinationGrouper("prefix", prefix_length=33)


@given(
    address=st.integers(min_value=0, max_value=2**32 - 1),
    length=st.integers(min_value=0, max_value=32),
)
def test_prefix_key_always_contains_address(address, length):
    grouper = DestinationGrouper("prefix", prefix_length=length)
    key = grouper.key_for(IPv4Address(address))
    assert key.contains(IPv4Address(address))
    assert key.length == length
