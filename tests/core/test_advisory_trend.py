"""Tests for the Section V extensions: advisories and trend detection."""

import pytest

from repro.core import Advisory, AdvisoryController, RiptideAgent, RiptideConfig, TrendDetector
from repro.net import Prefix
from repro.tcp import TcpConfig
from repro.testing import TwoHostTestbed, request_response


class TestAdvisoryController:
    def test_no_advisories_means_full_scale(self):
        assert AdvisoryController().scale_at(0.0) == 1.0

    def test_active_advisory_scales(self):
        controller = AdvisoryController()
        controller.advise(scale=0.5, duration=10.0, now=0.0)
        assert controller.scale_at(5.0) == 0.5

    def test_advisory_expires(self):
        controller = AdvisoryController()
        controller.advise(scale=0.5, duration=10.0, now=0.0)
        assert controller.scale_at(10.0) == 1.0

    def test_most_conservative_wins(self):
        controller = AdvisoryController()
        controller.advise(scale=0.8, duration=10.0, now=0.0)
        controller.advise(scale=0.4, duration=10.0, now=0.0)
        assert controller.scale_at(1.0) == 0.4

    def test_clear(self):
        controller = AdvisoryController()
        controller.advise(scale=0.5, duration=10.0, now=0.0)
        controller.clear()
        assert controller.scale_at(1.0) == 1.0

    def test_active_advisories_listing(self):
        controller = AdvisoryController()
        controller.advise(scale=0.5, duration=10.0, now=0.0, reason="lb-shift")
        active = controller.active_advisories(5.0)
        assert len(active) == 1
        assert active[0].reason == "lb-shift"

    @pytest.mark.parametrize("scale", [0.0, -0.5, 1.5])
    def test_invalid_scale_rejected(self, scale):
        with pytest.raises(ValueError):
            Advisory(scale=scale, until=10.0)

    def test_invalid_duration_rejected(self):
        with pytest.raises(ValueError):
            AdvisoryController().advise(scale=0.5, duration=0.0, now=0.0)

    def test_advise_prunes_expired_entries(self):
        # A controller that only ever receives advisories must not grow
        # without bound: each advise() call drops already-expired entries.
        controller = AdvisoryController()
        for i in range(100):
            controller.advise(scale=0.5, duration=1.0, now=float(i * 10))
        assert len(controller.active_advisories(990.5)) == 1
        assert len(controller._advisories) == 1

    def test_advise_keeps_live_entries(self):
        controller = AdvisoryController()
        controller.advise(scale=0.8, duration=100.0, now=0.0)
        controller.advise(scale=0.4, duration=1.0, now=50.0)
        controller.advise(scale=0.6, duration=100.0, now=60.0)
        # The short advisory expired at t=51; the long ones survive.
        assert len(controller._advisories) == 2
        assert controller.scale_at(70.0) == 0.6


class TestTrendDetector:
    def test_steady_values_no_penalty(self):
        detector = TrendDetector(drop_threshold=0.5)
        assert detector.observe("d", 100.0, now=0.0) == 1.0
        assert detector.observe("d", 95.0, now=1.0) == 1.0
        assert detector.triggers == 0

    def test_collapse_triggers_penalty(self):
        detector = TrendDetector(drop_threshold=0.5, penalty=0.5, hold=10.0)
        detector.observe("d", 100.0, now=0.0)
        assert detector.observe("d", 20.0, now=1.0) == 0.5
        assert detector.triggers == 1
        assert detector.in_penalty("d", 5.0)

    def test_penalty_expires_after_hold(self):
        detector = TrendDetector(drop_threshold=0.5, penalty=0.5, hold=10.0)
        detector.observe("d", 100.0, now=0.0)
        detector.observe("d", 20.0, now=1.0)
        assert detector.observe("d", 21.0, now=12.0) == 1.0
        assert not detector.in_penalty("d", 12.0)

    def test_keys_independent(self):
        detector = TrendDetector()
        detector.observe("a", 100.0, now=0.0)
        detector.observe("a", 10.0, now=1.0)
        assert detector.observe("b", 10.0, now=1.0) == 1.0

    def test_forget(self):
        detector = TrendDetector()
        detector.observe("d", 100.0, now=0.0)
        detector.observe("d", 10.0, now=1.0)
        detector.forget("d")
        assert detector.observe("d", 10.0, now=2.0) == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"drop_threshold": 0.0},
            {"drop_threshold": 1.0},
            {"penalty": 0.0},
            {"penalty": 1.5},
            {"hold": 0.0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TrendDetector(**kwargs)


def make_testbed():
    bed = TwoHostTestbed(
        rtt=0.080,
        client_config=TcpConfig(default_initrwnd=300),
        server_config=TcpConfig(default_initrwnd=300),
    )
    bed.serve_echo()
    return bed


class TestAgentIntegration:
    def test_advisory_scales_installed_windows(self):
        bed = make_testbed()
        agent = RiptideAgent(bed.server, RiptideConfig(update_interval=0.5))
        agent.start()
        request_response(bed, response_bytes=1_000_000)
        bed.sim.run(until=bed.sim.now + 2.0)
        key = Prefix.host(bed.client.address)
        unscaled = agent.learned_window_for(key)
        assert unscaled == 100  # clamped at c_max

        agent.advise_conservative(scale=0.5, duration=30.0, reason="lb")
        bed.sim.run(until=bed.sim.now + 2.0)
        scaled = agent.learned_window_for(key)
        assert scaled == 50
        assert agent.current_advisory_scale() == 0.5

    def test_advisory_scales_after_clamping(self):
        """The advisory scales the *clamped* window (module doc contract).

        The raw combined window here is far above ``c_max``; scaling
        before clamping would leave the installed route pinned at
        ``c_max``, making the advisory a no-op exactly when an operator
        most wants conservatism.
        """
        bed = make_testbed()
        agent = RiptideAgent(bed.server, RiptideConfig(update_interval=0.5))
        agent.start()
        request_response(bed, response_bytes=1_000_000)
        bed.sim.run(until=bed.sim.now + 2.0)
        agent.advise_conservative(scale=0.5, duration=30.0, reason="drill")
        bed.sim.run(until=bed.sim.now + 1.0)
        route = bed.server.ip.route_get(bed.client.address)
        assert route is not None
        assert route.initcwnd == agent.config.c_max // 2
        assert route.initcwnd < agent.config.c_max

    def test_advisory_expiry_restores_windows(self):
        bed = make_testbed()
        agent = RiptideAgent(bed.server, RiptideConfig(update_interval=0.5))
        agent.start()
        request_response(bed, response_bytes=1_000_000)
        bed.sim.run(until=bed.sim.now + 2.0)
        agent.advise_conservative(scale=0.5, duration=1.0)
        bed.sim.run(until=bed.sim.now + 3.0)
        key = Prefix.host(bed.client.address)
        assert agent.learned_window_for(key) == 100
        assert agent.current_advisory_scale() == 1.0

    def test_trend_detection_penalises_collapse(self):
        bed = make_testbed()
        config = RiptideConfig(
            update_interval=0.5,
            history="none",  # isolate the trend mechanism
            trend_detection=True,
            trend_drop_threshold=0.5,
            trend_penalty=0.5,
            # The helper runs a full 60 s deadline after each exchange, so
            # the hold must outlive that for the final assertion.
            trend_hold=240.0,
        )
        agent = RiptideAgent(bed.server, config)
        agent.start()
        # Grow a fat window, then replace it with a tiny connection.
        first = request_response(bed, response_bytes=1_000_000)
        bed.sim.run(until=bed.sim.now + 2.0)
        first.socket.close()
        bed.sim.run(until=bed.sim.now + 1.0)
        request_response(bed, response_bytes=2_000)
        bed.sim.run(until=bed.sim.now + 2.0)
        key = Prefix.host(bed.client.address)
        assert agent.trend_detector is not None
        assert agent.trend_detector.triggers >= 1
        # With history=none the learned value would be ~10; the penalty
        # halves it further, but c_min clamps at 10 — so assert via the
        # detector state rather than the clamped value.
        assert agent.trend_detector.in_penalty(key, bed.sim.now)

    def test_trend_disabled_by_default(self):
        bed = make_testbed()
        agent = RiptideAgent(bed.server, RiptideConfig())
        assert agent.trend_detector is None
