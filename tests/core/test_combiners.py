"""Unit and property tests for the combination algorithms."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    AverageCombiner,
    MaxCombiner,
    Observation,
    TrafficWeightedCombiner,
    make_combiner,
)


def obs(*pairs):
    return [Observation(cwnd=c, bytes_acked=b) for c, b in pairs]


class TestObservation:
    def test_invalid_cwnd_rejected(self):
        with pytest.raises(ValueError):
            Observation(cwnd=0)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            Observation(cwnd=10, bytes_acked=-1)


class TestAverageCombiner:
    def test_plain_mean(self):
        # The paper's Figure 7 example: windows averaging to 80.
        combined = AverageCombiner().combine(obs((60, 0), (80, 0), (100, 0)))
        assert combined == pytest.approx(80.0)

    def test_single_observation(self):
        assert AverageCombiner().combine(obs((42, 0))) == 42.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            AverageCombiner().combine([])


class TestMaxCombiner:
    def test_takes_maximum(self):
        assert MaxCombiner().combine(obs((10, 0), (90, 0), (40, 0))) == 90.0

    def test_more_aggressive_than_average(self):
        group = obs((10, 0), (50, 0), (100, 0))
        assert MaxCombiner().combine(group) >= AverageCombiner().combine(group)


class TestTrafficWeightedCombiner:
    def test_heavy_connection_dominates(self):
        # One busy connection at cwnd 100, one idle at cwnd 10.
        combined = TrafficWeightedCombiner().combine(
            obs((100, 1_000_000), (10, 0))
        )
        assert combined == pytest.approx(100.0, rel=0.01)

    def test_equal_traffic_reduces_to_mean(self):
        combined = TrafficWeightedCombiner().combine(
            obs((40, 5000), (80, 5000))
        )
        assert combined == pytest.approx(60.0)

    def test_all_idle_still_combines(self):
        combined = TrafficWeightedCombiner().combine(obs((40, 0), (80, 0)))
        assert combined == pytest.approx(60.0)

    def test_more_conservative_than_max(self):
        group = obs((10, 100_000), (100, 1_000))
        assert TrafficWeightedCombiner().combine(group) < MaxCombiner().combine(group)


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("average", AverageCombiner),
            ("max", MaxCombiner),
            ("traffic_weighted", TrafficWeightedCombiner),
        ],
    )
    def test_builds_by_name(self, name, cls):
        assert isinstance(make_combiner(name), cls)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_combiner("median")

    def test_unknown_error_lists_known_names(self):
        with pytest.raises(
            ValueError,
            match=r"unknown combiner 'median' "
            r"\(known: average, max, traffic_weighted\)",
        ) as excinfo:
            make_combiner("median")
        # ``from None``: the internal KeyError must not leak into the
        # traceback a user sees for a config typo.
        assert excinfo.value.__suppress_context__
        assert excinfo.value.__cause__ is None


observation_lists = st.lists(
    st.builds(
        Observation,
        cwnd=st.integers(min_value=1, max_value=500),
        bytes_acked=st.integers(min_value=0, max_value=10**9),
    ),
    min_size=1,
    max_size=30,
)


@given(observations=observation_lists)
def test_all_combiners_stay_within_observed_range(observations):
    """Every combiner output lies between the min and max observed cwnd."""
    low = min(o.cwnd for o in observations)
    high = max(o.cwnd for o in observations)
    for name in ("average", "max", "traffic_weighted"):
        combined = make_combiner(name).combine(observations)
        assert low - 1e-9 <= combined <= high + 1e-9


@given(observations=observation_lists)
def test_max_dominates_average(observations):
    assert (
        make_combiner("max").combine(observations)
        >= make_combiner("average").combine(observations) - 1e-9
    )
