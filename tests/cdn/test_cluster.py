"""Unit/integration tests for cluster assembly and monitors."""

import pytest

from repro.cdn.cluster import CdnCluster, ClusterConfig, with_riptide_config
from repro.cdn.monitors import CwndSampler
from repro.cdn.topology import Topology, build_paper_topology
from repro.core.config import RiptideConfig


def topology(codes=("LHR", "JFK", "NRT")):
    full = build_paper_topology()
    return Topology(pops=tuple(p for p in full.pops if p.code in codes))


@pytest.fixture
def cluster():
    return CdnCluster(topology(), ClusterConfig(seed=3))


class TestAssembly:
    def test_hosts_per_pop(self, cluster):
        assert len(cluster.hosts("LHR")) == 2
        assert len(cluster.all_hosts()) == 6

    def test_pop_codes(self, cluster):
        assert set(cluster.pop_codes) == {"LHR", "JFK", "NRT"}

    def test_unknown_pop_raises(self, cluster):
        with pytest.raises(KeyError):
            cluster.hosts("XXX")

    def test_server_addresses_in_pop_prefix(self, cluster):
        pop = cluster.pop("LHR")
        assert pop.prefix.contains(cluster.server_address("LHR"))

    def test_agents_created_but_stopped(self, cluster):
        agents = cluster.all_agents()
        assert len(agents) == 6
        assert not any(agent.running for agent in agents)

    def test_trunks_fully_meshed(self, cluster):
        pops = [cluster.pop(c) for c in cluster.pop_codes]
        for i, a in enumerate(pops):
            for b in pops[i + 1 :]:
                assert cluster.network.trunk_between(a.prefix, b.prefix) is not None


class TestRiptideControl:
    def test_start_riptide_starts_all_agents(self, cluster):
        cluster.start_riptide()
        assert all(agent.running for agent in cluster.all_agents())

    def test_start_riptide_subset(self, cluster):
        cluster.start_riptide(["LHR"])
        assert all(agent.running for agent in cluster.agents("LHR"))
        assert not any(agent.running for agent in cluster.agents("JFK"))

    def test_stop_riptide(self, cluster):
        cluster.start_riptide()
        cluster.stop_riptide()
        assert not any(agent.running for agent in cluster.all_agents())

    def test_riptide_learns_from_organic_traffic(self, cluster):
        cluster.add_organic_workload("LHR", ["JFK"])
        cluster.start_riptide()
        cluster.run(20.0)
        agent = cluster.agents("LHR")[0]
        assert len(agent.learned_table()) > 0

    def test_with_riptide_config_override(self):
        config = with_riptide_config(ClusterConfig(), c_max=42)
        assert config.riptide.c_max == 42


class TestWorkloadWiring:
    def test_organic_workload_runs(self, cluster):
        workload = cluster.add_organic_workload("LHR", ["JFK", "NRT"])
        cluster.run(10.0)
        assert workload.transfers_issued > 0
        assert workload.transfers_completed > 0

    def test_self_destination_excluded(self, cluster):
        workload = cluster.add_organic_workload("LHR", ["LHR", "JFK"])
        lhr_prefix = cluster.pop("LHR").prefix
        assert all(
            not lhr_prefix.contains(d) for d in workload._destinations
        )

    def test_run_advances_clock(self, cluster):
        before = cluster.sim.now
        cluster.run(5.0)
        assert cluster.sim.now == before + 5.0


class TestCwndSampler:
    def test_samples_established_connections(self, cluster):
        cluster.add_organic_workload("LHR", ["JFK"])
        cluster.run(5.0)
        sampler = cluster.make_cwnd_sampler(interval=1.0)
        sampler.start()
        cluster.run(10.0)
        assert len(sampler.samples) > 0
        assert all(s.cwnd >= 1 for s in sampler.samples)

    def test_created_after_filters(self, cluster):
        cluster.add_organic_workload("LHR", ["JFK"])
        cluster.run(5.0)
        sampler = cluster.make_cwnd_sampler(
            interval=1.0, created_after=cluster.sim.now + 1e9
        )
        sampler.start()
        cluster.run(5.0)
        assert sampler.samples == []

    def test_pop_scoped_sampler(self, cluster):
        cluster.add_organic_workload("LHR", ["JFK"])
        cluster.run(5.0)
        sampler = cluster.make_cwnd_sampler(interval=1.0, pop_codes=["NRT"])
        sampler.start()
        cluster.run(5.0)
        assert all(s.host_name.startswith("NRT") for s in sampler.samples)

    def test_sampler_requires_hosts(self, cluster):
        with pytest.raises(ValueError):
            CwndSampler(cluster.sim, [], interval=1.0)

    def test_stop_sampling(self, cluster):
        cluster.add_organic_workload("LHR", ["JFK"])
        sampler = cluster.make_cwnd_sampler(interval=1.0)
        sampler.start()
        cluster.run(5.0)
        sampler.stop()
        count = len(sampler.samples)
        cluster.run(5.0)
        assert len(sampler.samples) == count
