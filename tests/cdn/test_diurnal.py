"""Tests for diurnal rate profiles and their effect on workloads."""

import pytest

from repro.cdn.diurnal import ConstantProfile, OnOffProfile, SinusoidalProfile
from repro.cdn.filesizes import FileSizeDistribution
from repro.cdn.transfer import TransferClient, TransferServer
from repro.cdn.workload import OrganicWorkload, OrganicWorkloadConfig
from repro.testing import TwoHostTestbed


class TestProfiles:
    def test_constant_profile(self):
        profile = ConstantProfile(0.7)
        assert profile.factor(0.0) == 0.7
        assert profile.factor(1e6) == 0.7
        assert profile.max_factor == 0.7

    def test_constant_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantProfile(-0.1)

    def test_sinusoidal_peaks_and_troughs(self):
        profile = SinusoidalProfile(period=100.0, floor=0.2, peak=1.0)
        assert profile.factor(0.0) == pytest.approx(1.0)
        assert profile.factor(50.0) == pytest.approx(0.2)
        assert profile.factor(100.0) == pytest.approx(1.0)
        assert profile.max_factor == 1.0

    def test_sinusoidal_bounded(self):
        profile = SinusoidalProfile(period=37.0, floor=0.1, peak=0.9)
        for t in range(0, 200, 3):
            assert 0.1 - 1e-9 <= profile.factor(float(t)) <= 0.9 + 1e-9

    def test_sinusoidal_validation(self):
        with pytest.raises(ValueError):
            SinusoidalProfile(period=0.0)
        with pytest.raises(ValueError):
            SinusoidalProfile(period=10.0, floor=0.9, peak=0.5)

    def test_on_off_cycles(self):
        profile = OnOffProfile(on_duration=10.0, off_duration=5.0)
        assert profile.factor(0.0) == 1.0
        assert profile.factor(9.9) == 1.0
        assert profile.factor(10.1) == 0.0
        assert profile.factor(14.9) == 0.0
        assert profile.factor(15.1) == 1.0

    def test_on_off_validation(self):
        with pytest.raises(ValueError):
            OnOffProfile(on_duration=0.0, off_duration=1.0)


class TestWorkloadModulation:
    def make_workload(self, profile, rate=20.0):
        bed = TwoHostTestbed(rtt=0.010)
        TransferServer(bed.server)
        client = TransferClient(bed.client)
        workload = OrganicWorkload(
            sim=bed.sim,
            client=client,
            destinations=[bed.server.address],
            sizes=FileSizeDistribution.production_cdn(),
            rng=bed.streams.stream("wl"),
            config=OrganicWorkloadConfig(rate_per_second=rate, max_object_bytes=20_000),
            rate_profile=profile,
        )
        return bed, workload

    def test_on_off_valley_is_silent(self):
        bed, workload = self.make_workload(
            OnOffProfile(on_duration=10.0, off_duration=10.0)
        )
        workload.start()
        bed.sim.run(until=10.0)
        at_peak_end = workload.transfers_issued
        assert at_peak_end > 50
        bed.sim.run(until=19.5)
        assert workload.transfers_issued == at_peak_end  # valley: nothing
        bed.sim.run(until=30.0)
        assert workload.transfers_issued > at_peak_end  # next peak resumes

    def test_half_rate_profile_halves_arrivals(self):
        _, full_workload = self.make_workload(ConstantProfile(1.0), rate=50.0)
        bed_full = full_workload._sim
        full_workload.start()
        bed_full.run(until=20.0)

        _, half_workload = self.make_workload(ConstantProfile(0.5), rate=50.0)
        bed_half = half_workload._sim
        half_workload.start()
        bed_half.run(until=20.0)

        ratio = half_workload.transfers_issued / max(full_workload.transfers_issued, 1)
        assert 0.35 < ratio < 0.65

    def test_zero_profile_generates_nothing(self):
        bed, workload = self.make_workload(ConstantProfile(0.0))
        workload.start()
        bed.sim.run(until=20.0)
        assert workload.transfers_issued == 0
