"""Unit tests for organic workloads and the probe fleet."""

import pytest

from repro.cdn.probes import PAPER_PROBE_SIZES, rtt_bucket
from repro.cdn.topology import build_paper_topology
from repro.cdn.workload import OrganicWorkload, OrganicWorkloadConfig
from repro.cdn.cluster import CdnCluster, ClusterConfig
from repro.cdn.filesizes import FileSizeDistribution
from repro.cdn.transfer import TransferClient, TransferServer
from repro.testing import TwoHostTestbed


def small_cluster(seed: int = 7) -> CdnCluster:
    full = build_paper_topology()
    from repro.cdn.topology import Topology

    topo = Topology(
        pops=tuple(p for p in full.pops if p.code in ("LHR", "JFK", "NRT"))
    )
    return CdnCluster(topo, ClusterConfig(seed=seed))


class TestRttBuckets:
    @pytest.mark.parametrize(
        "rtt,expected",
        [
            (0.010, "<50ms"),
            (0.050, "<50ms"),
            (0.051, "51-100ms"),
            (0.100, "51-100ms"),
            (0.149, "101-150ms"),
            (0.151, ">150ms"),
            (0.500, ">150ms"),
        ],
    )
    def test_bucketing(self, rtt, expected):
        assert rtt_bucket(rtt) == expected


class TestOrganicWorkload:
    def test_generates_transfers(self):
        bed = TwoHostTestbed(rtt=0.050)
        TransferServer(bed.server)
        client = TransferClient(bed.client)
        workload = OrganicWorkload(
            sim=bed.sim,
            client=client,
            destinations=[bed.server.address],
            sizes=FileSizeDistribution.production_cdn(),
            rng=bed.streams.stream("wl"),
            config=OrganicWorkloadConfig(rate_per_second=10.0, max_object_bytes=200_000),
        )
        workload.start()
        bed.sim.run(until=10.0)
        assert workload.transfers_issued > 50
        assert workload.transfers_completed > 40
        assert workload.bytes_fetched > 0

    def test_stop_halts_arrivals(self):
        bed = TwoHostTestbed(rtt=0.050)
        TransferServer(bed.server)
        client = TransferClient(bed.client)
        workload = OrganicWorkload(
            sim=bed.sim,
            client=client,
            destinations=[bed.server.address],
            sizes=FileSizeDistribution.production_cdn(),
            rng=bed.streams.stream("wl"),
            config=OrganicWorkloadConfig(rate_per_second=10.0),
        )
        workload.start()
        bed.sim.run(until=2.0)
        workload.stop()
        issued = workload.transfers_issued
        bed.sim.run(until=10.0)
        assert workload.transfers_issued == issued

    def test_churn_closes_connections(self):
        bed = TwoHostTestbed(rtt=0.010)
        TransferServer(bed.server)
        client = TransferClient(bed.client)
        workload = OrganicWorkload(
            sim=bed.sim,
            client=client,
            destinations=[bed.server.address],
            sizes=FileSizeDistribution.production_cdn(),
            rng=bed.streams.stream("wl"),
            config=OrganicWorkloadConfig(
                rate_per_second=5.0, close_probability=1.0, max_object_bytes=50_000
            ),
        )
        workload.start()
        bed.sim.run(until=10.0)
        # Every completed transfer closed its connection, so every new
        # transfer opened a new one.
        assert client.connections_opened >= workload.transfers_completed

    def test_requires_destinations(self):
        bed = TwoHostTestbed()
        client = TransferClient(bed.client)
        with pytest.raises(ValueError):
            OrganicWorkload(
                sim=bed.sim,
                client=client,
                destinations=[],
                sizes=FileSizeDistribution.production_cdn(),
                rng=bed.streams.stream("wl"),
            )

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            OrganicWorkloadConfig(rate_per_second=0)
        with pytest.raises(ValueError):
            OrganicWorkloadConfig(close_probability=1.5)


class TestProbeFleet:
    def test_rounds_issue_all_combinations(self):
        cluster = small_cluster()
        fleet = cluster.make_probe_fleet(["LHR"], interval=5.0)
        fleet.start(initial_delay=0.0)
        cluster.run(1.0)
        # 1 source, 2 targets (JFK, NRT; self excluded), 3 sizes.
        assert len(fleet.results) == 2 * 3

    def test_probes_complete_and_bucket(self):
        cluster = small_cluster()
        fleet = cluster.make_probe_fleet(["LHR"], interval=5.0)
        fleet.start(initial_delay=0.0)
        cluster.run(4.9)  # one round only (next fires at t=5)
        completed = fleet.completed_results()
        assert len(completed) == 6
        for probe in completed:
            assert probe.bucket in ("<50ms", "51-100ms", "101-150ms", ">150ms")
            assert probe.total_time > 0

    def test_size_filter(self):
        cluster = small_cluster()
        fleet = cluster.make_probe_fleet(["LHR"], interval=5.0)
        fleet.start(initial_delay=0.0)
        cluster.run(4.9)
        for size in PAPER_PROBE_SIZES:
            subset = fleet.completed_results(size_bytes=size)
            assert all(p.size_bytes == size for p in subset)
            assert len(subset) == 2

    def test_source_pop_filter(self):
        cluster = small_cluster()
        fleet = cluster.make_probe_fleet(["LHR", "JFK"], interval=5.0)
        fleet.start(initial_delay=0.0)
        cluster.run(8.0)
        lhr_only = fleet.completed_results(source_pop="LHR")
        assert all(p.source_pop == "LHR" for p in lhr_only)

    def test_second_round_reuses_connections(self):
        cluster = small_cluster()
        fleet = cluster.make_probe_fleet(["LHR"], interval=5.0)
        fleet.start(initial_delay=0.0)
        cluster.run(12.0)
        first_round = fleet.results[:6]
        second_round = fleet.results[6:12]
        assert all(p.new_connection for p in first_round)
        assert not any(p.new_connection for p in second_round)

    def test_close_before_round_forces_new_connections(self):
        cluster = small_cluster()
        fleet = cluster.make_probe_fleet(
            ["LHR"], interval=5.0, close_before_round=True
        )
        fleet.start(initial_delay=0.0)
        cluster.run(12.0)
        assert all(p.new_connection for p in fleet.results)

    def test_start_requires_sources_and_targets(self):
        cluster = small_cluster()
        from repro.cdn.probes import ProbeFleet

        fleet = ProbeFleet(cluster.sim, lambda a, b: 0.1)
        with pytest.raises(ValueError):
            fleet.start()

    def test_churn_requires_rng(self):
        from repro.cdn.probes import ProbeFleet

        cluster = small_cluster()
        with pytest.raises(ValueError):
            ProbeFleet(cluster.sim, lambda a, b: 0.1, churn_probability=0.5)
