"""The Figure 10/11 cwnd sampler: population filtering semantics."""

import pytest

from repro.cdn.monitors import CwndSampler
from repro.tcp import TcpConfig
from repro.testing import TwoHostTestbed, request_response


def make_testbed():
    bed = TwoHostTestbed(
        rtt=0.05,
        client_config=TcpConfig(default_initrwnd=300),
        server_config=TcpConfig(default_initrwnd=300),
    )
    bed.serve_echo()
    return bed


class TestBasics:
    def test_requires_at_least_one_host(self):
        bed = make_testbed()
        with pytest.raises(ValueError, match="at least one host"):
            CwndSampler(bed.sim, [], interval=1.0)

    def test_samples_data_bearing_connections(self):
        bed = make_testbed()
        request_response(bed, response_bytes=200_000, deadline=5.0)
        sampler = CwndSampler(bed.sim, [bed.server], interval=1.0)
        sampler.start()
        bed.sim.run(until=bed.sim.now + 3.5)
        assert len(sampler.samples) >= 3
        assert sampler.cwnd_values() == [s.cwnd for s in sampler.samples]
        assert all(s.bytes_acked > 0 for s in sampler.samples)
        assert all(s.host_name == "server" for s in sampler.samples)

    def test_stop_halts_sampling(self):
        bed = make_testbed()
        request_response(bed, response_bytes=100_000, deadline=5.0)
        sampler = CwndSampler(bed.sim, [bed.server], interval=1.0)
        sampler.start()
        bed.sim.run(until=bed.sim.now + 2.5)
        assert sampler.running
        sampler.stop()
        count = len(sampler.samples)
        bed.sim.run(until=bed.sim.now + 3.0)
        assert not sampler.running
        assert len(sampler.samples) == count


class TestCreatedAfter:
    """"We further consider only connections that were created after
    Riptide was started." — the paper's sampling methodology."""

    def test_older_connections_are_excluded(self):
        bed = make_testbed()
        # Connection A predates the threshold; B is created after it.
        request_response(bed, response_bytes=100_000, deadline=5.0)
        threshold = bed.sim.now
        request_response(bed, response_bytes=100_000, deadline=5.0)
        filtered = CwndSampler(
            bed.sim, [bed.server], interval=1.0, created_after=threshold
        )
        unfiltered = CwndSampler(bed.sim, [bed.server], interval=1.0)
        filtered.start()
        unfiltered.start()
        bed.sim.run(until=bed.sim.now + 3.5)
        # Both established connections linger on the server; the filter
        # halves the sampled population at every tick.
        assert len(filtered.samples) >= 1
        assert len(unfiltered.samples) == 2 * len(filtered.samples)

    def test_set_created_after_applies_to_later_ticks(self):
        bed = make_testbed()
        request_response(bed, response_bytes=100_000, deadline=5.0)
        sampler = CwndSampler(bed.sim, [bed.server], interval=1.0)
        sampler.start()
        bed.sim.run(until=bed.sim.now + 2.5)
        seen = len(sampler.samples)
        assert seen >= 1
        # Everything now on the host predates the new threshold.
        sampler.set_created_after(bed.sim.now + 1e9)
        bed.sim.run(until=bed.sim.now + 3.0)
        assert len(sampler.samples) == seen


class TestDataBearingOnly:
    def test_idle_connections_are_skipped(self):
        bed = make_testbed()
        request_response(bed, response_bytes=100_000, deadline=5.0)
        # An established connection that never carries response data:
        # the server side has acked no payload bytes.
        bed.client.connect(bed.server.address, 80)
        bed.sim.run(until=bed.sim.now + 1.0)
        strict = CwndSampler(
            bed.sim, [bed.server], interval=1.0, data_bearing_only=True
        )
        lenient = CwndSampler(
            bed.sim, [bed.server], interval=1.0, data_bearing_only=False
        )
        strict.start()
        lenient.start()
        bed.sim.run(until=bed.sim.now + 3.5)
        assert len(strict.samples) >= 1
        assert len(lenient.samples) == 2 * len(strict.samples)
        assert all(s.bytes_acked > 0 for s in strict.samples)
        assert any(s.bytes_acked == 0 for s in lenient.samples)
