"""Unit tests for PoPs and the 34-PoP paper topology."""

import pytest

from repro.cdn.geo import GeoPoint
from repro.cdn.pop import PoP
from repro.cdn.topology import Topology, build_paper_topology
from repro.net import Prefix


class TestPoP:
    def make(self, **overrides):
        kwargs = dict(
            code="TST",
            city="Testville",
            continent="Europe",
            location=GeoPoint(0.0, 0.0),
            prefix=Prefix.parse("10.0.0.0/24"),
            server_count=2,
        )
        kwargs.update(overrides)
        return PoP(**kwargs)

    def test_server_addresses_follow_prefix(self):
        pop = self.make(server_count=3)
        addresses = pop.server_addresses()
        assert [str(a) for a in addresses] == ["10.0.0.1", "10.0.0.2", "10.0.0.3"]

    def test_unknown_continent_rejected(self):
        with pytest.raises(ValueError):
            self.make(continent="Atlantis")

    def test_empty_code_rejected(self):
        with pytest.raises(ValueError):
            self.make(code="")

    def test_prefix_must_fit_servers(self):
        with pytest.raises(ValueError):
            self.make(prefix=Prefix.parse("10.0.0.0/30"), server_count=5)

    def test_zero_servers_rejected(self):
        with pytest.raises(ValueError):
            self.make(server_count=0)


class TestPaperTopology:
    def test_table2_census(self):
        counts = build_paper_topology().continent_counts()
        assert counts == {
            "Europe": 10,
            "North America": 11,
            "South America": 1,
            "Asia": 9,
            "Oceania": 3,
        }

    def test_34_pops_total(self):
        assert len(build_paper_topology().pops) == 34

    def test_unique_codes_and_prefixes(self):
        topo = build_paper_topology()
        codes = [p.code for p in topo.pops]
        prefixes = [p.prefix for p in topo.pops]
        assert len(set(codes)) == 34
        assert len(set(prefixes)) == 34

    def test_pop_by_code(self):
        topo = build_paper_topology()
        assert topo.pop_by_code("LHR").city == "London"
        with pytest.raises(KeyError):
            topo.pop_by_code("XXX")

    def test_all_pairs_count(self):
        rtts = build_paper_topology().all_pair_rtts()
        assert len(rtts) == 34 * 33 // 2

    def test_median_rtt_exceeds_125ms(self):
        """The Figure 5 anchor."""
        rtts = sorted(build_paper_topology().all_pair_rtts())
        median = rtts[len(rtts) // 2]
        assert median > 0.125

    def test_rtt_symmetry(self):
        topo = build_paper_topology()
        a, b = topo.pops[0], topo.pops[20]
        assert topo.rtt(a, b) == topo.rtt(b, a)

    def test_rtts_from_excludes_self(self):
        topo = build_paper_topology()
        origin = topo.pop_by_code("LHR")
        rtts = topo.rtts_from(origin)
        assert "LHR" not in rtts
        assert len(rtts) == 33

    def test_duplicate_codes_rejected(self):
        topo = build_paper_topology()
        with pytest.raises(ValueError):
            Topology(pops=(topo.pops[0], topo.pops[0]))

    def test_servers_per_pop_configurable(self):
        topo = build_paper_topology(servers_per_pop=4)
        assert all(p.server_count == 4 for p in topo.pops)
