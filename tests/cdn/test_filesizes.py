"""Unit and property tests for the file-size distribution."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cdn.filesizes import FileSizeDistribution


@pytest.fixture
def dist():
    return FileSizeDistribution.production_cdn()


class TestCalibration:
    """The Figure 2/3 anchors the distribution was fit to."""

    def test_54_percent_exceed_default_window(self, dist):
        assert dist.fraction_exceeding(15_000) == pytest.approx(0.54, abs=0.02)

    def test_iw50_anchor(self, dist):
        """+31% of files complete in one RTT at IW50 vs IW10."""
        gain = dist.cdf(50 * 1460) - dist.cdf(10 * 1460)
        assert gain == pytest.approx(0.31, abs=0.03)

    def test_iw100_anchor(self, dist):
        """All but ~15% fit in one RTT at IW100."""
        assert dist.fraction_exceeding(100 * 1460) == pytest.approx(0.15, abs=0.02)

    def test_median_is_about_18kb(self, dist):
        assert dist.median_bytes == pytest.approx(18_300, rel=0.05)


class TestSampling:
    def test_samples_within_clamp(self, dist):
        rng = random.Random(1)
        for _ in range(2000):
            size = dist.sample(rng)
            assert dist.min_bytes <= size <= dist.max_bytes

    def test_sampling_is_reproducible(self, dist):
        assert dist.sample_many(random.Random(7), 50) == dist.sample_many(
            random.Random(7), 50
        )

    def test_empirical_matches_analytic_cdf(self, dist):
        rng = random.Random(3)
        samples = dist.sample_many(rng, 50_000)
        for threshold in (5_000, 15_000, 100_000, 1_000_000):
            empirical = sum(1 for s in samples if s <= threshold) / len(samples)
            assert empirical == pytest.approx(dist.cdf(threshold), abs=0.02)

    def test_negative_count_rejected(self, dist):
        with pytest.raises(ValueError):
            dist.sample_many(random.Random(1), -1)


class TestAnalyticForm:
    def test_cdf_monotone(self, dist):
        values = [dist.cdf(x) for x in (10, 1_000, 100_000, 10_000_000)]
        assert values == sorted(values)

    def test_cdf_at_zero(self, dist):
        assert dist.cdf(0) == 0.0
        assert dist.cdf(-5) == 0.0

    def test_quantile_inverts_cdf(self, dist):
        for p in (0.1, 0.5, 0.9):
            assert dist.cdf(dist.quantile(p)) == pytest.approx(p, abs=1e-6)

    def test_quantile_bounds_rejected(self, dist):
        with pytest.raises(ValueError):
            dist.quantile(0.0)
        with pytest.raises(ValueError):
            dist.quantile(1.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            FileSizeDistribution(sigma=0.0)
        with pytest.raises(ValueError):
            FileSizeDistribution(min_bytes=100, max_bytes=50)


@given(p=st.floats(min_value=0.01, max_value=0.99))
def test_quantile_cdf_round_trip(p):
    dist = FileSizeDistribution.production_cdn()
    assert dist.cdf(dist.quantile(p)) == pytest.approx(p, abs=1e-6)


@given(
    a=st.floats(min_value=100, max_value=1e9),
    b=st.floats(min_value=100, max_value=1e9),
)
def test_cdf_monotonicity_property(a, b):
    dist = FileSizeDistribution.production_cdn()
    low, high = min(a, b), max(a, b)
    assert dist.cdf(low) <= dist.cdf(high)
