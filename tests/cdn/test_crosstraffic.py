"""Tests for cross-traffic congestion and Riptide's adaptation to it."""

import pytest

from repro.cdn.crosstraffic import CrossTraffic
from repro.core import RiptideAgent, RiptideConfig
from repro.net import Prefix
from repro.tcp import TcpConfig
from repro.testing import TwoHostTestbed, request_response


def make_testbed(bandwidth_bps=100e6, queue=64):
    bed = TwoHostTestbed(
        rtt=0.080,
        bandwidth_bps=bandwidth_bps,
        queue_limit_packets=queue,
        client_config=TcpConfig(default_initrwnd=300),
        server_config=TcpConfig(default_initrwnd=300),
    )
    bed.serve_echo()
    return bed


class TestCrossTraffic:
    def test_occupies_the_link(self, sim):
        from repro.net.link import Link

        link = Link(sim, bandwidth_bps=10e6, propagation_delay=0.001)
        source = CrossTraffic(sim, link, rate_bps=5e6)
        source.start()
        sim.run(until=1.0)
        # 5 Mbps of 1500 B packets for 1 s is ~416 packets.
        assert 380 < source.packets_offered < 450
        assert link.stats.bytes_offered > 500_000

    def test_stop_halts_emission(self, sim):
        from repro.net.link import Link

        link = Link(sim, bandwidth_bps=10e6, propagation_delay=0.001)
        source = CrossTraffic(sim, link, rate_bps=5e6)
        source.start()
        sim.run(until=0.5)
        source.stop()
        offered = source.packets_offered
        sim.run(until=2.0)
        assert source.packets_offered == offered

    def test_invalid_rate_rejected(self, sim):
        from repro.net.link import Link

        link = Link(sim, bandwidth_bps=10e6, propagation_delay=0.001)
        with pytest.raises(ValueError):
            CrossTraffic(sim, link, rate_bps=0)

    def test_congestion_slows_transfers(self):
        clean = make_testbed()
        clean_time = request_response(clean, response_bytes=500_000).total_time

        congested = make_testbed()
        # Saturate 92% of the response direction.
        source = CrossTraffic(
            congested.sim, congested.trunk.reverse, rate_bps=92e6
        )
        source.start()
        congested.sim.run(until=congested.sim.now + 0.5)
        congested_time = request_response(
            congested, response_bytes=500_000, deadline=120.0
        ).total_time
        assert congested_time > clean_time * 1.3

    def test_congestion_causes_queue_drops_for_bursts(self):
        bed = make_testbed(queue=32)
        source = CrossTraffic(bed.sim, bed.trunk.reverse, rate_bps=95e6)
        source.start()
        bed.sim.run(until=0.5)
        bed.server.ip.route_replace("10.0.0.0/24", initcwnd=200)
        result = request_response(bed, response_bytes=400_000, deadline=120.0)
        assert result.completed
        assert bed.trunk.reverse.stats.packets_dropped_queue > 0


class TestRiptideAdaptsToCongestion:
    def test_learned_window_shrinks_under_congestion(self):
        """The paper's adaptivity claim, end to end: a congestion episode
        shrinks live windows, and Riptide's learned value follows."""
        bed = make_testbed(bandwidth_bps=50e6, queue=48)
        agent = RiptideAgent(
            bed.server, RiptideConfig(update_interval=0.25, alpha=0.5, c_max=500)
        )
        agent.start()
        key = Prefix.host(bed.client.address)

        # Clean period: learn a healthy window.
        request_response(bed, response_bytes=1_500_000, deadline=60.0)
        bed.sim.run(until=bed.sim.now + 1.0)
        healthy = agent.learned_window_for(key)
        assert healthy is not None and healthy > 30

        # Congestion episode: 90% of the data direction consumed.
        source = CrossTraffic(bed.sim, bed.trunk.reverse, rate_bps=45e6)
        source.start()
        for _ in range(3):
            request_response(bed, response_bytes=400_000, deadline=120.0)
        bed.sim.run(until=bed.sim.now + 2.0)
        congested = agent.learned_window_for(key)
        assert congested is not None
        assert congested < healthy

    def test_window_recovers_after_congestion_clears(self):
        # A deep buffer (>= BDP) so the clean path can carry big windows.
        bed = make_testbed(bandwidth_bps=50e6, queue=512)
        agent = RiptideAgent(
            bed.server, RiptideConfig(update_interval=0.25, alpha=0.3, c_max=500)
        )
        agent.start()
        key = Prefix.host(bed.client.address)

        def drain_connections():
            for sock in list(bed.client.sockets()) + list(bed.server.sockets()):
                sock.abort()
            bed.sim.run(until=bed.sim.now + 0.5)

        # Severe congestion episode: 96% of the data direction consumed.
        source = CrossTraffic(bed.sim, bed.trunk.reverse, rate_bps=48e6)
        source.start()
        for _ in range(2):
            request_response(bed, response_bytes=150_000, deadline=120.0)
            bed.sim.run(until=bed.sim.now + 0.5)
        congested = agent.learned_window_for(key)
        assert congested is not None

        # Congestion clears; stale collapsed connections retire with it.
        source.stop()
        drain_connections()
        for _ in range(3):
            request_response(bed, response_bytes=1_500_000, deadline=60.0)
            bed.sim.run(until=bed.sim.now + 0.5)
        recovered = agent.learned_window_for(key)
        assert recovered is not None
        assert recovered > congested