"""Unit tests for geography and RTT synthesis."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cdn.geo import GeoPoint, haversine_km, rtt_between

LONDON = GeoPoint(51.51, -0.13)
NEW_YORK = GeoPoint(40.71, -74.01)
SYDNEY = GeoPoint(-33.87, 151.21)


class TestGeoPoint:
    def test_valid_coordinates(self):
        point = GeoPoint(45.0, -120.0)
        assert point.latitude == 45.0

    @pytest.mark.parametrize("lat,lon", [(91, 0), (-91, 0), (0, 181), (0, -181)])
    def test_invalid_coordinates_rejected(self, lat, lon):
        with pytest.raises(ValueError):
            GeoPoint(lat, lon)


class TestHaversine:
    def test_zero_distance_to_self(self):
        assert haversine_km(LONDON, LONDON) == 0.0

    def test_london_new_york_distance(self):
        # Great-circle distance is ~5570 km.
        assert haversine_km(LONDON, NEW_YORK) == pytest.approx(5570, rel=0.02)

    def test_symmetry(self):
        assert haversine_km(LONDON, SYDNEY) == pytest.approx(
            haversine_km(SYDNEY, LONDON)
        )

    def test_antipodal_bound(self):
        north = GeoPoint(90.0, 0.0)
        south = GeoPoint(-90.0, 0.0)
        # Half the Earth's circumference.
        assert haversine_km(north, south) == pytest.approx(20015, rel=0.01)


class TestRttSynthesis:
    def test_min_rtt_floor_for_colocated(self):
        assert rtt_between(LONDON, LONDON) == pytest.approx(0.002)

    def test_transatlantic_rtt_plausible(self):
        rtt = rtt_between(LONDON, NEW_YORK)
        # Real LHR<->JFK RTTs sit around 70-90 ms.
        assert 0.050 < rtt < 0.130

    def test_inflation_scales_rtt(self):
        base = rtt_between(LONDON, SYDNEY, inflation=1.0)
        double = rtt_between(LONDON, SYDNEY, inflation=2.0)
        assert double == pytest.approx(2 * base)

    def test_invalid_inflation_rejected(self):
        with pytest.raises(ValueError):
            rtt_between(LONDON, NEW_YORK, inflation=0.0)


coordinates = st.tuples(
    st.floats(min_value=-90, max_value=90),
    st.floats(min_value=-180, max_value=180),
)


@given(a=coordinates, b=coordinates)
def test_distance_is_symmetric_and_bounded(a, b):
    pa, pb = GeoPoint(*a), GeoPoint(*b)
    d_ab = haversine_km(pa, pb)
    d_ba = haversine_km(pb, pa)
    assert d_ab == pytest.approx(d_ba, abs=1e-6)
    assert 0.0 <= d_ab <= 20016.0


@given(a=coordinates, b=coordinates)
def test_rtt_at_least_floor(a, b):
    rtt = rtt_between(GeoPoint(*a), GeoPoint(*b))
    assert rtt >= 0.002
