"""Unit tests for the transfer service and its connection pool."""

import pytest

from repro.cdn.transfer import TransferClient, TransferServer
from repro.testing import TwoHostTestbed


@pytest.fixture
def bed():
    testbed = TwoHostTestbed(rtt=0.100)
    TransferServer(testbed.server)
    return testbed


@pytest.fixture
def client(bed):
    return TransferClient(bed.client)


class TestBasicFetch:
    def test_fetch_completes(self, bed, client):
        result = client.fetch(bed.server.address, 50_000)
        bed.sim.run(until=5.0)
        assert result.completed
        assert result.total_time > 0
        assert client.transfers_completed == 1

    def test_callback_invoked(self, bed, client):
        seen = []
        client.fetch(bed.server.address, 10_000, on_complete=seen.append)
        bed.sim.run(until=5.0)
        assert len(seen) == 1
        assert seen[0].completed

    def test_first_fetch_opens_connection(self, bed, client):
        result = client.fetch(bed.server.address, 1_000)
        bed.sim.run(until=5.0)
        assert result.new_connection
        assert client.connections_opened == 1

    def test_initial_cwnd_recorded(self, bed, client):
        result = client.fetch(bed.server.address, 1_000)
        bed.sim.run(until=5.0)
        assert result.initial_cwnd == 10

    def test_total_time_before_completion_raises(self, bed, client):
        result = client.fetch(bed.server.address, 1_000)
        with pytest.raises(ValueError):
            _ = result.total_time


class TestConnectionReuse:
    def test_sequential_fetches_reuse(self, bed, client):
        client.fetch(bed.server.address, 1_000)
        bed.sim.run(until=2.0)
        second = client.fetch(bed.server.address, 1_000)
        bed.sim.run(until=4.0)
        assert not second.new_connection
        assert client.connections_reused == 1
        assert client.pool_size(bed.server.address) == 1

    def test_parallel_fetches_open_parallel_connections(self, bed, client):
        first = client.fetch(bed.server.address, 100_000)
        second = client.fetch(bed.server.address, 100_000)
        bed.sim.run(until=10.0)
        assert first.completed and second.completed
        assert first.new_connection and second.new_connection
        assert client.connections_opened == 2

    def test_reused_fetch_is_faster(self, bed, client):
        cold = client.fetch(bed.server.address, 1_000)
        bed.sim.run(until=2.0)
        warm = client.fetch(bed.server.address, 1_000)
        bed.sim.run(until=4.0)
        # Warm skips the handshake RTT.
        assert warm.total_time < cold.total_time

    def test_close_idle_connections(self, bed, client):
        client.fetch(bed.server.address, 1_000)
        bed.sim.run(until=2.0)
        closed = client.close_idle_connections()
        bed.sim.run(until=4.0)
        assert closed == 1
        assert client.pool_size(bed.server.address) == 0

    def test_close_busy_connection_skipped(self, bed, client):
        client.fetch(bed.server.address, 500_000)
        bed.sim.run(until=0.15)  # handshake done, transfer in flight
        assert client.close_idle_connections() == 0

    def test_probabilistic_close(self, bed, client):
        import random

        for _ in range(1):
            client.fetch(bed.server.address, 1_000)
        bed.sim.run(until=2.0)
        # probability 0 closes nothing
        assert client.close_idle_connections(probability=0.0, rng=random.Random(1)) == 0
        assert client.close_idle_connections(probability=1.0, rng=random.Random(1)) == 1

    def test_probabilistic_close_requires_rng(self, bed, client):
        with pytest.raises(ValueError):
            client.close_idle_connections(probability=0.5)


class TestServer:
    def test_serves_and_counts(self, bed, client):
        client.fetch(bed.server.address, 30_000)
        bed.sim.run(until=5.0)
        # Grab the server object created in the fixture indirectly: it
        # registered a listener; re-create a reference via a new fetch.
        assert client.transfers_completed == 1

    def test_server_closes_on_client_fin(self, bed, client):
        client.fetch(bed.server.address, 1_000)
        bed.sim.run(until=2.0)
        client.close_idle_connections()
        bed.sim.run(until=4.0)
        assert bed.server.socket_count() == 0

    def test_ignores_malformed_requests(self, bed):
        done = []
        sock = bed.client.connect(
            bed.server.address,
            8080,
            on_established=lambda s: s.send_message("not-a-request", 100),
            on_message=lambda s, payload, size: done.append(payload),
        )
        bed.sim.run(until=2.0)
        assert done == []
        assert sock.is_established


class TestFailures:
    def test_error_fails_inflight_transfer(self, bed, client):
        failures = []
        result = client.fetch(
            bed.server.address, 500_000, on_complete=failures.append
        )
        bed.sim.run(until=0.3)
        # Abort the underlying socket mid-transfer.
        for sock in bed.client.sockets():
            sock.abort()
        bed.sim.run(until=2.0)
        assert not result.completed
        assert result.failed_reason is not None
        assert client.transfers_failed == 1
        assert failures and failures[0] is result

    def test_pool_recovers_after_failure(self, bed, client):
        client.fetch(bed.server.address, 500_000)
        bed.sim.run(until=0.3)
        for sock in bed.client.sockets():
            sock.abort()
        bed.sim.run(until=1.0)
        retry = client.fetch(bed.server.address, 10_000)
        bed.sim.run(until=5.0)
        assert retry.completed
