"""Tests for the cluster-side fluid engine (`repro.cdn.fluidtraffic`).

The couplings under test: populations register per (host, destination)
and appear in `ss` polls as synthesized sockets the unchanged Riptide
stack learns from; their offered load pressures the shared trunk; the
link's loss model and outages feed back into the cohort dynamics.
"""

import pytest

from repro.cdn.cluster import CdnCluster, ClusterConfig
from repro.cdn.crosstraffic import filler_addresses
from repro.cdn.fluidtraffic import FLUID_REMOTE_PORT, FluidTraffic
from repro.cdn.topology import Topology, build_paper_topology
from repro.core.config import RiptideConfig
from repro.sim.fluid import FluidConfig
from repro.tcp.constants import TcpConfig
from repro.tcp.socket import TcpState


def topology(codes=("LHR", "JFK", "NRT")):
    full = build_paper_topology()
    return Topology(pops=tuple(p for p in full.pops if p.code in codes))


@pytest.fixture
def cluster():
    return CdnCluster(
        topology(),
        ClusterConfig(
            seed=3, tcp=TcpConfig(default_initrwnd=300)
        ),
    )


def add_population(cluster, source="LHR", dest="JFK", flows=50.0, **kwargs):
    engine = cluster.fluid_traffic()
    host = cluster.hosts(source)[0]
    return engine, engine.add_population(
        host, cluster.server_address(dest), target_flows=flows, **kwargs
    )


class TestRegistration:
    def test_population_registers_and_steps(self, cluster):
        engine, pop = add_population(cluster)
        cluster.run(2.0)
        assert engine.running
        assert engine.steps > 0
        assert pop.steps == engine.steps
        assert engine.total_flows() == pytest.approx(50.0, rel=1e-6)

    def test_rtt_derived_from_trunk(self, cluster):
        _, pop = add_population(cluster)
        trunk = cluster.network.link_from(
            cluster.pop("LHR").prefix, cluster.pop("JFK").prefix
        )
        assert pop.rtt == pytest.approx(
            2.0 * (trunk.propagation_delay + trunk.extra_delay)
        )

    def test_entry_window_is_routed_initcwnd(self, cluster):
        host = cluster.hosts("LHR")[0]
        remote = cluster.server_address("JFK")
        host.ip.route_replace(f"{remote}/32", initcwnd=77)
        _, pop = add_population(cluster)
        assert pop.distribution.quantile(0.5) == 77

    def test_stop_releases_link_pressure(self, cluster):
        engine, _ = add_population(cluster)
        cluster.run(2.0)
        trunk = cluster.network.link_from(
            cluster.pop("LHR").prefix, cluster.pop("JFK").prefix
        )
        assert trunk.fluid_bps > 0.0
        engine.stop()
        assert trunk.fluid_bps == 0.0
        assert not engine.running

    def test_cluster_helper_adds_per_destination(self, cluster):
        engine = cluster.add_fluid_traffic(
            "LHR", ["JFK", "NRT"], flows_per_destination=10.0
        )
        assert len(engine.populations) == 2
        cluster.run(1.0)
        assert engine.total_flows() == pytest.approx(20.0, rel=1e-6)


class TestSsSynthesis:
    def test_fluid_sockets_visible_in_ss(self, cluster):
        _, pop = add_population(cluster, flows=50.0)
        cluster.run(1.0)
        host = cluster.hosts("LHR")[0]
        stats = host.ss.tcp_info(established_only=True)
        fluid_rows = [s for s in stats if s.remote_port == FLUID_REMOTE_PORT]
        assert len(fluid_rows) == FluidConfig().ss_samples
        row = fluid_rows[0]
        assert row.state is TcpState.ESTABLISHED
        assert row.remote_address == cluster.server_address("JFK")
        assert row.cwnd >= 1
        assert row.srtt == pytest.approx(pop.rtt)

    def test_small_cohort_contributes_few_rows(self, cluster):
        add_population(cluster, flows=2.0)
        cluster.run(1.0)
        host = cluster.hosts("LHR")[0]
        rows = [
            s for s in host.ss.tcp_info()
            if s.remote_port == FLUID_REMOTE_PORT
        ]
        # A two-flow cohort weighs like two sockets, not ss_samples.
        assert len(rows) == 2

    def test_outgoing_only_filter_respects_is_client(self, cluster):
        add_population(cluster, flows=10.0, is_client=True)
        add_population(cluster, dest="NRT", flows=10.0, is_client=False)
        cluster.run(1.0)
        host = cluster.hosts("LHR")[0]
        outgoing = [
            s for s in host.ss.tcp_info(outgoing_only=True)
            if s.remote_port == FLUID_REMOTE_PORT
        ]
        assert outgoing
        assert all(s.is_client for s in outgoing)

    def test_counters_split_across_samples(self, cluster):
        _, pop = add_population(cluster, flows=50.0)
        cluster.run(5.0)
        host = cluster.hosts("LHR")[0]
        rows = [
            s for s in host.ss.tcp_info()
            if s.remote_port == FLUID_REMOTE_PORT
        ]
        total_sent = sum(s.segments_sent for s in rows)
        assert total_sent == pytest.approx(pop.segments_sent_total, rel=0.05)
        assert all(s.bytes_acked > 0 for s in rows)

    def test_agent_learns_from_fluid_only(self, cluster):
        """The end-to-end claim: an unchanged Riptide agent learns
        windows from a purely fluid background."""
        host = cluster.hosts("LHR")[0]
        remote = cluster.server_address("JFK")
        engine = cluster.fluid_traffic()
        engine.add_population(
            host, remote, target_flows=100.0,
            growth_segments_per_sec=40.0, churn_per_flow_per_sec=0.5,
        )
        cluster.start_riptide(["LHR"])
        cluster.run(20.0)
        agent = cluster.agents("LHR")[0]
        learned = dict(agent.learned_table().windows())
        assert learned, "agent learned nothing from fluid cohorts"
        assert all(w >= 10 for w in learned.values())


class TestLinkCoupling:
    def test_fluid_load_extends_serialization(self, cluster):
        add_population(cluster, flows=400.0)
        cluster.run(2.0)
        trunk = cluster.network.link_from(
            cluster.pop("LHR").prefix, cluster.pop("JFK").prefix
        )
        loaded = trunk.serialization_time(1460)
        trunk.set_fluid_load(0.0)
        clean = trunk.serialization_time(1460)
        assert loaded > clean

    def test_serialization_floor_protects_packet_slice(self, sim):
        from repro.net.link import Link

        link = Link(sim, bandwidth_bps=1e9, propagation_delay=0.01)
        link.set_fluid_load(1e12)  # absurd overload
        # Residual capacity floors at 5% of the link.
        assert link.serialization_time(1460) == pytest.approx(
            1460 * 8 / (1e9 * 0.05)
        )
        with pytest.raises(ValueError):
            link.set_fluid_load(-1.0)

    def test_overload_raises_loss_rate(self, cluster):
        engine, pop = add_population(
            cluster, flows=100_000.0, growth_segments_per_sec=50.0
        )
        trunk = cluster.network.link_from(
            cluster.pop("LHR").prefix, cluster.pop("JFK").prefix
        )
        baseline = trunk.effective_loss_model.mean_loss_rate()
        cluster.run(10.0)
        assert engine.link_loss_rate(trunk) > baseline
        # Congestion holds the cohort's windows down.
        assert pop.mean_window() < 50

    def test_link_down_collapses_cohort(self, cluster):
        engine, pop = add_population(
            cluster, flows=50.0, growth_segments_per_sec=20.0
        )
        cluster.run(5.0)
        grown = pop.mean_window()
        trunk = cluster.network.link_from(
            cluster.pop("LHR").prefix, cluster.pop("JFK").prefix
        )
        trunk.set_down()
        cluster.run(2.0)
        assert engine.link_loss_rate(trunk) == 1.0
        assert pop.mean_window() < grown
        assert trunk.fluid_bps == 0.0

    def test_intra_zone_population_uncoupled(self, cluster):
        engine = cluster.fluid_traffic()
        host = cluster.hosts("LHR")[0]
        peer = cluster.hosts("LHR")[1]
        pop = engine.add_population(host, peer.address, target_flows=5.0)
        cluster.run(1.0)
        assert pop.flows == pytest.approx(5.0)
        assert not engine._link_states or all(
            p is not pop
            for state in engine._link_states
            for p in state.populations
        )


class TestObservability:
    def test_gauges_and_counters_emitted(self):
        from repro.obs import capture

        with capture():
            cluster = CdnCluster(
                topology(), ClusterConfig(seed=3)
            )
            cluster.add_fluid_traffic(
                "LHR", ["JFK"], flows_per_destination=25.0
            )
            cluster.run(3.0)
            metrics = cluster.sim.obs.metrics
            assert metrics.counter("fluid_steps").value > 0
            assert metrics.gauge("fluid_flows_open").value == pytest.approx(
                25.0, rel=1e-6
            )
            assert metrics.gauge("fluid_offered_bps").value > 0
            assert metrics.gauge("fluid_mean_cwnd").value >= 1.0

    def test_timeline_sampler_records_fluid_series(self):
        from repro.obs import capture

        with capture():
            cluster = CdnCluster(topology(), ClusterConfig(seed=3))
            cluster.add_fluid_traffic(
                "LHR", ["JFK"], flows_per_destination=25.0
            )
            cluster.start_timeline_sampler(interval=1.0)
            cluster.run(5.0)
            names = set(cluster.sim.obs.timeline.series_names())
            assert "cluster:fluid_flows_open" in names
            assert "cluster:fluid_mean_cwnd" in names


class TestFillerAddresses:
    def test_distinct_per_instance_name(self):
        a_src, a_dst = filler_addresses("cross-traffic")
        b_src, b_dst = filler_addresses("storm-JFK")
        assert {a_src, a_dst} & {b_src, b_dst} == set()
        assert a_src != a_dst

    def test_stable_across_calls(self):
        assert filler_addresses("x") == filler_addresses("x")

    def test_addresses_in_test_net(self):
        src, dst = filler_addresses("any-name-at-all")
        assert str(src).startswith("192.0.2.")
        assert str(dst).startswith("192.0.2.")

    def test_instance_uses_derived_addresses(self, sim):
        from repro.cdn.crosstraffic import CrossTraffic
        from repro.net.link import Link

        link = Link(sim, bandwidth_bps=10e6, propagation_delay=0.001)
        source = CrossTraffic(sim, link, rate_bps=1e6, name="storm-A")
        assert (source.filler_src, source.filler_dst) == filler_addresses(
            "storm-A"
        )


class TestEngineValidation:
    def test_unknown_zone_pair_raises(self, cluster):
        engine = cluster.fluid_traffic()
        host = cluster.hosts("LHR")[0]
        # An address in no registered zone: intra-zone fallback only
        # applies when both ends resolve to the same zone.
        from repro.net.addresses import IPv4Address

        orphan = IPv4Address("203.0.113.9")
        with pytest.raises(ValueError):
            engine.add_population(host, orphan, target_flows=1.0)

    def test_engine_repr_mentions_population_count(self, cluster):
        engine, _ = add_population(cluster)
        assert "populations=1" in repr(engine)
