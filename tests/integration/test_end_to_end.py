"""End-to-end integration tests: the whole stack, paper claims included."""

import pytest

from repro.cdn.cluster import CdnCluster, ClusterConfig, with_riptide_config
from repro.cdn.topology import Topology, build_paper_topology
from repro.core import RiptideConfig
from repro.tcp import TcpConfig
from repro.testing import TwoHostTestbed, request_response


def topology(codes=("LHR", "JFK", "SYD")):
    full = build_paper_topology()
    return Topology(pops=tuple(p for p in full.pops if p.code in codes))


class TestRiptideImprovesColdTransfers:
    """The headline claim: fresh connections to known destinations skip
    most of slow start."""

    @pytest.fixture(scope="class")
    def pair(self):
        results = {}
        for riptide_on in (False, True):
            # Prefix granularity: serving windows grown toward *any* LHR
            # host teach the route used for responses to every LHR host
            # (Section III-B, "Destinations as Routes").
            cluster = CdnCluster(
                topology(),
                with_riptide_config(
                    ClusterConfig(seed=11), granularity="prefix", prefix_length=16
                ),
            )
            cluster.add_organic_workload("JFK", ["LHR"])
            cluster.add_organic_workload("LHR", ["JFK"])
            if riptide_on:
                cluster.start_riptide()
            cluster.run(25.0)
            # A cold 100 KB fetch from LHR against JFK.
            client = cluster.client("LHR", 1)
            result = client.fetch(cluster.server_address("JFK"), 100_000)
            cluster.run(10.0)
            results[riptide_on] = result
        return results

    def test_both_complete(self, pair):
        assert pair[False].completed and pair[True].completed

    def test_riptide_is_faster(self, pair):
        assert pair[True].total_time < pair[False].total_time

    def test_riptide_initcwnd_learned(self, pair):
        assert pair[False].initial_cwnd == 10
        assert pair[True].initial_cwnd > 10


class TestThirtyPercentTailClaim:
    """Abstract: 'up to a 30% decrease in tail latency'."""

    def test_tail_gain_at_least_25_percent(self):
        times = {}
        for riptide_on in (False, True):
            cluster = CdnCluster(
                topology(),
                with_riptide_config(
                    ClusterConfig(seed=5), granularity="prefix", prefix_length=16
                ),
            )
            for code in cluster.pop_codes:
                cluster.add_organic_workload(
                    code, [c for c in cluster.pop_codes if c != code]
                )
            if riptide_on:
                cluster.start_riptide()
            cluster.run(15.0)
            fleet = cluster.make_probe_fleet(
                ["LHR"], interval=6.0, host_indices=[1], churn_probability=0.5
            )
            fleet.start(initial_delay=0.0)
            cluster.run(30.0)
            times[riptide_on] = fleet.completion_times(size_bytes=100_000)
        from repro.analysis import EmpiricalCdf

        control = EmpiricalCdf(times[False])
        riptide = EmpiricalCdf(times[True])
        p75_gain = 1.0 - riptide.quantile(0.75) / control.quantile(0.75)
        # The paper reports "up to a 30% decrease in tail latency"; we
        # require a substantial fraction of that on this small scenario.
        assert p75_gain > 0.2

    def test_small_probes_unharmed(self):
        """Riptide 'caused no negative side-effects' for 10 KB probes."""
        medians = {}
        for riptide_on in (False, True):
            cluster = CdnCluster(topology(), ClusterConfig(seed=5))
            for code in cluster.pop_codes:
                cluster.add_organic_workload(
                    code, [c for c in cluster.pop_codes if c != code]
                )
            if riptide_on:
                cluster.start_riptide()
            cluster.run(15.0)
            fleet = cluster.make_probe_fleet(
                ["LHR"], interval=6.0, host_indices=[1], churn_probability=0.5
            )
            fleet.start(initial_delay=0.0)
            cluster.run(30.0)
            samples = sorted(fleet.completion_times(size_bytes=10_000))
            medians[riptide_on] = samples[len(samples) // 2]
        assert medians[True] <= medians[False] * 1.05


class TestAdaptivity:
    """Design objective (iii): adapt to network conditions."""

    def test_windows_shrink_when_path_degrades(self):
        """If connections to a destination show smaller windows, Riptide
        responds accordingly, shrinking the initial windows."""
        from repro.core import RiptideAgent
        from repro.net import Prefix

        bed = TwoHostTestbed(
            rtt=0.080,
            client_config=TcpConfig(default_initrwnd=300),
            server_config=TcpConfig(default_initrwnd=300),
        )
        bed.serve_echo()
        agent = RiptideAgent(bed.server, RiptideConfig(update_interval=0.25))
        agent.start()
        first = request_response(bed, response_bytes=1_000_000)
        bed.sim.run(until=bed.sim.now + 2.0)
        key = Prefix.host(bed.client.address)
        high = agent.learned_window_for(key)
        assert high is not None and high > 30

        # Retire the fat connection, then degrade the path: the windows
        # of fresh connections collapse under loss and the learned value
        # must follow them down.
        first.socket.close()
        bed.sim.run(until=bed.sim.now + 1.0)
        from repro.net.loss import BernoulliLoss
        import random

        bed.trunk.reverse._loss = BernoulliLoss(0.05)
        bed.trunk.reverse._rng = random.Random(9)
        for _ in range(3):
            result = request_response(bed, response_bytes=100_000, deadline=120.0)
            assert result.completed
        bed.sim.run(until=bed.sim.now + 3.0)
        low = agent.learned_window_for(key)
        assert low is not None
        assert low < high

    def test_riptide_with_host_granularity_isolates_destinations(self):
        cluster = CdnCluster(
            topology(),
            with_riptide_config(ClusterConfig(seed=3), granularity="host"),
        )
        cluster.add_organic_workload("LHR", ["JFK"])
        cluster.start_riptide()
        cluster.run(20.0)
        agent = cluster.agents("LHR")[0]
        for prefix in agent.learned_table().windows():
            assert prefix.length == 32


class TestDeterminism:
    def test_same_seed_same_results(self):
        def run_once():
            cluster = CdnCluster(topology(), ClusterConfig(seed=77))
            cluster.add_organic_workload("LHR", ["JFK", "SYD"])
            cluster.start_riptide()
            cluster.run(15.0)
            fleet = cluster.make_probe_fleet(["LHR"], interval=5.0)
            fleet.start(initial_delay=0.0)
            cluster.run(10.0)
            return [
                (p.destination_pop, p.size_bytes, round(p.total_time, 9))
                for p in fleet.completed_results()
            ]

        assert run_once() == run_once()

    def test_different_seeds_differ(self):
        def run_once(seed):
            cluster = CdnCluster(topology(), ClusterConfig(seed=seed))
            cluster.add_organic_workload("LHR", ["JFK", "SYD"])
            cluster.run(10.0)
            workloads = cluster._workloads
            return workloads[0].transfers_issued

        assert run_once(1) != run_once(2)
