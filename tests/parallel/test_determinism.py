"""Parallel execution must be indistinguishable from serial execution.

These tests run real simulations both ways and require byte-identical
measurements — not approximate agreement.  This is the property that
makes ``--workers N`` safe to use on any experiment.
"""

import pytest

from repro.experiments.multiseed import sweep_seeds
from repro.experiments.scenarios import (
    ProbeArmSummary,
    ProbeStudyConfig,
    ProbeStudyRun,
    run_paired_probe_study,
)
from repro.obs import capture
from repro.parallel import fork_available

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="platform has no fork start method"
)

#: Small but real: 3 PoPs spanning near/far RTTs, seconds of traffic.
TINY_STUDY = ProbeStudyConfig(
    topology_codes=("LHR", "JFK", "NRT"),
    source_pops=("LHR",),
    warmup=2.0,
    duration=8.0,
    probe_interval=4.0,
    organic_rate=1.0,
)


def _transfer_time(seed: int) -> float:
    from repro.testing import TwoHostTestbed, request_response

    bed = TwoHostTestbed(rtt=0.080, seed=seed)
    bed.serve_echo()
    return request_response(bed, response_bytes=80_000).total_time


class TestSweepSeeds:
    @needs_fork
    def test_parallel_sweep_bit_identical_to_serial(self):
        seeds = [1, 2, 3, 4, 5]
        serial = sweep_seeds("transfer_time", seeds, _transfer_time, workers=1)
        parallel = sweep_seeds("transfer_time", seeds, _transfer_time, workers=4)
        assert parallel.values == serial.values  # bit-for-bit, same order
        assert parallel.seeds == serial.seeds

    @needs_fork
    def test_failing_seed_surfaces_with_its_label(self):
        from repro.parallel import WorkerFailure

        def metric(seed: int) -> float:
            if seed == 3:
                raise ValueError("seed 3 exploded")
            return float(seed)

        with pytest.raises(WorkerFailure, match=r"m\[seed=3\]") as info:
            sweep_seeds("m", [1, 2, 3, 4], metric, workers=2)
        assert info.value.original_type == "ValueError"
        assert "seed 3 exploded" in str(info.value)


class TestPairedProbeStudy:
    @needs_fork
    def test_parallel_arms_match_serial_measurements(self):
        serial_control, serial_riptide = run_paired_probe_study(TINY_STUDY)
        assert isinstance(serial_control, ProbeStudyRun)
        control, riptide = run_paired_probe_study(TINY_STUDY, workers=2)
        assert isinstance(control, ProbeArmSummary)
        assert not control.riptide_enabled and riptide.riptide_enabled
        for parallel_arm, serial_arm in (
            (control, serial_control),
            (riptide, serial_riptide),
        ):
            assert (
                parallel_arm.fleet.completion_times()
                == serial_arm.fleet.completion_times()
            )
            assert parallel_arm.fleet.rounds_issued == serial_arm.fleet.rounds_issued
            assert len(parallel_arm.fleet) == len(serial_arm.fleet.results)
            assert (
                parallel_arm.events_processed
                == serial_arm.cluster.sim.events_processed
            )
            assert parallel_arm.learned_routes == sum(
                len(agent.learned_table())
                for agent in serial_arm.cluster.all_agents()
            )

    @needs_fork
    def test_parallel_merged_metrics_match_serial(self):
        with capture() as serial_obs:
            run_paired_probe_study(TINY_STUDY)
        with capture() as parallel_obs:
            run_paired_probe_study(TINY_STUDY, workers=2)

        serial_counters = {
            (c.name, c.labels): c.value for c in serial_obs.metrics.counters()
        }
        parallel_counters = {
            (c.name, c.labels): c.value for c in parallel_obs.metrics.counters()
        }
        assert parallel_counters == serial_counters

        serial_hists = {
            (h.name, h.labels): h.values() for h in serial_obs.metrics.histograms()
        }
        parallel_hists = {
            (h.name, h.labels): h.values() for h in parallel_obs.metrics.histograms()
        }
        assert parallel_hists == serial_hists

        assert parallel_obs.trace.totals() == serial_obs.trace.totals()


class TestObservabilityDeterminism:
    """The flow/span/timeline stores and the attribution report must be
    byte-identical between a serial run and a merged parallel run —
    this is what makes ``repro flows``/``repro report --workers N``
    trustworthy."""

    @needs_fork
    def test_merged_stores_and_report_bit_identical(self):
        from repro.analysis.export import (
            flows_to_json,
            spans_to_chrome_json,
            timeline_to_csv,
        )
        from repro.experiments.chaos import ChaosStudyConfig, run_chaos_study
        from repro.obs.report import build_report, report_to_json

        config = ChaosStudyConfig(warmup=5.0, duration=20.0)
        with capture() as serial_obs:
            run_chaos_study(config)
        with capture() as parallel_obs:
            run_chaos_study(config, workers=2)

        assert flows_to_json(parallel_obs.flows) == flows_to_json(serial_obs.flows)
        assert spans_to_chrome_json(parallel_obs.spans) == spans_to_chrome_json(
            serial_obs.spans
        )
        assert timeline_to_csv(parallel_obs.timeline) == timeline_to_csv(
            serial_obs.timeline
        )
        serial_report = report_to_json(
            build_report(serial_obs, experiment="chaos_lossy_agent")
        )
        parallel_report = report_to_json(
            build_report(parallel_obs, experiment="chaos_lossy_agent")
        )
        assert parallel_report == serial_report


class TestChaosStudy:
    @needs_fork
    def test_fault_injected_arms_bit_identical_to_serial(self):
        from repro.experiments.chaos import ChaosStudyConfig, run_chaos_study

        config = ChaosStudyConfig(warmup=5.0, duration=20.0)
        serial = run_chaos_study(config)
        parallel = run_chaos_study(config, workers=2)
        for par, ser in (
            (parallel.control, serial.control),
            (parallel.riptide, serial.riptide),
        ):
            assert par.fleet.completion_times() == ser.fleet.completion_times()
            assert par.events_processed == ser.events_processed
            assert par.faults_injected == ser.faults_injected
            assert par.faults_cleared == ser.faults_cleared
            assert par.guard_trips == ser.guard_trips
            assert par.crashes == ser.crashes
            assert par.poll_failures == ser.poll_failures
            assert par.tool_errors == ser.tool_errors
            assert par.learned_routes == ser.learned_routes
        assert parallel.median_gain() == serial.median_gain()


class TestFig10Sweep:
    @needs_fork
    def test_parallel_cmax_sweep_bit_identical(self):
        from repro.experiments import fig10_cmax_sweep

        kwargs = dict(
            c_max_values=(50, 100),
            topology_codes=("LHR", "JFK", "NRT"),
            duration=8.0,
            warmup=2.0,
            organic_rate=1.0,
        )
        serial = fig10_cmax_sweep.run(**kwargs)
        parallel = fig10_cmax_sweep.run(workers=3, **kwargs)
        assert set(parallel.cdfs) == set(serial.cdfs)
        for key in serial.cdfs:
            assert parallel.cdfs[key].values == serial.cdfs[key].values
