"""Tests for the forked task executor."""

import os

import pytest

from repro.obs import Instrumentation, capture
from repro.parallel import WorkerFailure, default_workers, fork_available, run_tasks

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="platform has no fork start method"
)


def _square_task(n):
    return lambda: n * n


class TestOrdering:
    def test_results_in_task_order_serial(self):
        results = run_tasks([_square_task(n) for n in range(6)], workers=1)
        assert results == [0, 1, 4, 9, 16, 25]

    @needs_fork
    def test_results_in_task_order_parallel(self):
        results = run_tasks([_square_task(n) for n in range(11)], workers=3)
        assert results == [n * n for n in range(11)]

    @needs_fork
    def test_parallel_equals_serial(self):
        tasks = [_square_task(n) for n in range(7)]
        assert run_tasks(tasks, workers=4) == run_tasks(tasks, workers=1)

    def test_empty_task_list(self):
        assert run_tasks([], workers=4) == []

    @needs_fork
    def test_more_workers_than_tasks(self):
        assert run_tasks([_square_task(2)], workers=8) == [4]

    def test_default_workers_positive(self):
        assert default_workers() >= 1


class TestLabels:
    def test_label_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="2 labels for 1 tasks"):
            run_tasks([_square_task(1)], labels=["a", "b"])

    def test_serial_failure_carries_label_and_origin(self):
        def boom():
            raise ValueError("bad seed")

        with pytest.raises(WorkerFailure, match=r"task 1 \(arm-b\) failed") as info:
            run_tasks([_square_task(1), boom], workers=1, labels=["arm-a", "arm-b"])
        assert info.value.index == 1
        assert info.value.label == "arm-b"
        assert info.value.original_type == "ValueError"

    @needs_fork
    def test_parallel_failure_carries_label_and_traceback(self):
        def boom():
            raise ValueError("bad seed")

        tasks = [_square_task(0), boom, _square_task(2), _square_task(3)]
        with pytest.raises(WorkerFailure, match=r"task 1 \(arm-b\)") as info:
            run_tasks(tasks, workers=2, labels=["arm-a", "arm-b", "arm-c", "arm-d"])
        failure = info.value
        assert failure.index == 1
        assert failure.original_type == "ValueError"
        assert "bad seed" in str(failure)
        assert "ValueError" in failure.worker_traceback

    @needs_fork
    def test_lowest_failing_index_wins(self):
        def boom(tag):
            def fail():
                raise RuntimeError(tag)

            return fail

        with pytest.raises(WorkerFailure) as info:
            run_tasks([_square_task(0), boom("first"), boom("second")], workers=2)
        assert info.value.index == 1
        assert "first" in str(info.value)


class TestWorkerDeath:
    @needs_fork
    def test_unpicklable_result_is_a_task_failure(self):
        tasks = [_square_task(0), lambda: (lambda: None)]
        with pytest.raises(WorkerFailure, match="task 1"):
            run_tasks(tasks, workers=2)

    @needs_fork
    def test_dead_worker_converted_to_failure_without_hang(self):
        def die():
            os._exit(17)

        tasks = [_square_task(0), die, _square_task(2), _square_task(3)]
        with pytest.raises(WorkerFailure, match="worker process died") as info:
            run_tasks(tasks, workers=2, labels=["a", "b", "c", "d"])
        assert info.value.index == 1
        assert info.value.label == "b"
        assert "exitcode=17" in str(info.value)


def _counting_task(amount):
    def task():
        from repro.obs import active_instrumentation

        obs = active_instrumentation()
        obs.metrics.counter("parallel_test_total").inc(amount)
        obs.metrics.histogram("parallel_test_hist").observe(float(amount))
        return amount

    return task


class TestObsMerge:
    @needs_fork
    def test_merges_into_active_capture(self):
        with capture() as instrumentation:
            results = run_tasks([_counting_task(n) for n in (1, 2, 3)], workers=2)
        assert results == [1, 2, 3]
        assert instrumentation.metrics.counter_value("parallel_test_total") == 6
        histogram = instrumentation.metrics.histogram("parallel_test_hist")
        assert histogram.values() == [1.0, 2.0, 3.0]

    @needs_fork
    def test_merges_into_explicit_target(self):
        target = Instrumentation()
        run_tasks([_counting_task(5), _counting_task(7)], workers=2, merge_into=target)
        assert target.metrics.counter_value("parallel_test_total") == 12

    @needs_fork
    def test_merge_matches_serial_run(self):
        tasks = [_counting_task(n) for n in (1, 2, 3, 4)]
        with capture() as serial_obs:
            for task in tasks:
                task()
        with capture() as parallel_obs:
            run_tasks(tasks, workers=2)
        assert (
            parallel_obs.metrics.counter_value("parallel_test_total")
            == serial_obs.metrics.counter_value("parallel_test_total")
        )

    @needs_fork
    def test_failure_merges_only_the_prefix(self):
        def boom():
            raise RuntimeError("x")

        tasks = [_counting_task(1), boom, _counting_task(100)]
        with capture() as instrumentation:
            with pytest.raises(WorkerFailure):
                run_tasks(tasks, workers=2)
        # Task 0's capture merged; task 2's (after the failing index) did not.
        assert instrumentation.metrics.counter_value("parallel_test_total") == 1
