"""Tests for the perf-baseline harness and its CLI verb."""

import json

from repro.bench import (
    BENCH_NAME,
    bench_kernel,
    format_bench,
    run_bench,
    write_bench,
)


class TestBenchSections:
    def test_kernel_section_reports_both_modes(self):
        section = bench_kernel(events=5_000)
        assert section["events"] == 5_000
        assert section["instrumented_events_per_sec"] > 0
        assert section["disabled_events_per_sec"] > 0


class TestBenchPayload:
    def test_smoke_payload_has_the_tracked_readings(self, tmp_path):
        payload = run_bench(workers=2, seeds=2, smoke=True)
        assert payload["benchmark"] == BENCH_NAME
        assert payload["smoke"] is True
        assert payload["host"]["cpu_count"] >= 1
        assert payload["kernel"]["instrumented_events_per_sec"] > 0
        assert payload["tcp_transfer"]["events_per_sec"] > 0
        assert payload["probe_study"]["wall_time_s"] > 0
        assert payload["probe_study"]["probes_completed"] > 0
        sweep = payload["multiseed_sweep"]
        assert sweep["serial_wall_s"] > 0 and sweep["parallel_wall_s"] > 0
        assert sweep["speedup"] > 0
        # The portable acceptance signal: parallel == serial, bit for bit.
        assert sweep["bit_identical"] is True

        target = tmp_path / "BENCH_002.json"
        assert write_bench(payload, str(target)) == str(target)
        assert json.loads(target.read_text())["benchmark"] == BENCH_NAME

        summary = format_bench(payload)
        assert BENCH_NAME in summary
        assert "ev/s" in summary


class TestBenchCli:
    def test_bench_verb_writes_json(self, capsys, monkeypatch, tmp_path):
        from repro import bench as bench_mod
        from repro.cli import main

        fake = {
            "benchmark": BENCH_NAME,
            "smoke": True,
            "host": {"cpu_count": 1},
            "kernel": {
                "instrumented_events_per_sec": 1.0,
                "disabled_events_per_sec": 2.0,
            },
            "tcp_transfer": {"events_per_sec": 3.0},
            "probe_study": {"wall_time_s": 0.5},
            "multiseed_sweep": {
                "serial_wall_s": 1.0,
                "parallel_wall_s": 0.5,
                "workers": 2,
                "speedup": 2.0,
                "bit_identical": True,
            },
        }
        monkeypatch.setattr(bench_mod, "run_bench", lambda **kwargs: fake)
        target = tmp_path / "bench.json"
        assert main(["bench", "--smoke", "--out", str(target)]) == 0
        assert json.loads(target.read_text())["benchmark"] == BENCH_NAME
        out = capsys.readouterr().out
        assert "bit-identical=True" in out
