"""Tests for the perf-baseline harness and its CLI verb."""

import json

from repro.bench import (
    BENCH_NAME,
    bench_kernel,
    format_bench,
    run_bench,
    write_bench,
)


class TestBenchSections:
    def test_kernel_section_reports_both_modes(self):
        section = bench_kernel(events=5_000)
        assert section["events"] == 5_000
        assert section["instrumented_events_per_sec"] > 0
        assert section["disabled_events_per_sec"] > 0


class TestBenchPayload:
    def test_smoke_payload_has_the_tracked_readings(self, tmp_path):
        payload = run_bench(workers=2, seeds=2, smoke=True)
        assert payload["benchmark"] == BENCH_NAME
        assert payload["smoke"] is True
        assert payload["host"]["cpu_count"] >= 1
        assert payload["kernel"]["instrumented_events_per_sec"] > 0
        assert payload["tcp_transfer"]["events_per_sec"] > 0
        assert payload["probe_study"]["wall_time_s"] > 0
        assert payload["probe_study"]["probes_completed"] > 0
        sweep = payload["multiseed_sweep"]
        assert sweep["serial_wall_s"] > 0 and sweep["parallel_wall_s"] > 0
        assert sweep["speedup"] > 0
        # The portable acceptance signal: parallel == serial, bit for bit.
        assert sweep["bit_identical"] is True
        slo = payload["slo_overhead"]
        assert slo["engine_events_per_sec"] > 0
        assert slo["engine_overhead_fraction"] < 0.05
        assert slo["disabled_overhead_fraction"] < 0.02

        target = tmp_path / "BENCH_002.json"
        assert write_bench(payload, str(target)) == str(target)
        assert json.loads(target.read_text())["benchmark"] == BENCH_NAME

        summary = format_bench(payload)
        assert BENCH_NAME in summary
        assert "ev/s" in summary


class TestBenchCli:
    def test_bench_verb_writes_json(self, capsys, monkeypatch, tmp_path):
        from repro import bench as bench_mod
        from repro.cli import main

        fake = {
            "benchmark": BENCH_NAME,
            "smoke": True,
            "host": {"cpu_count": 1},
            "kernel": {
                "instrumented_events_per_sec": 1.0,
                "disabled_events_per_sec": 2.0,
            },
            "tcp_transfer": {"events_per_sec": 3.0},
            "probe_study": {"wall_time_s": 0.5},
            "multiseed_sweep": {
                "serial_wall_s": 1.0,
                "parallel_wall_s": 0.5,
                "workers": 2,
                "speedup": 2.0,
                "bit_identical": True,
            },
        }
        monkeypatch.setattr(bench_mod, "run_bench", lambda **kwargs: fake)
        target = tmp_path / "bench.json"
        assert main(["bench", "--smoke", "--out", str(target)]) == 0
        assert json.loads(target.read_text())["benchmark"] == BENCH_NAME
        out = capsys.readouterr().out
        assert "bit-identical=True" in out


class TestSloOverhead:
    def test_section_reports_all_four_modes_and_fractions(self):
        from repro.bench import bench_slo_overhead

        section = bench_slo_overhead(events=5_000, repeats=1)
        assert section["events"] == 5_000
        assert section["plain_events_per_sec"] > 0
        assert section["engine_events_per_sec"] > 0
        assert section["disabled_events_per_sec"] > 0
        assert section["disabled_tapped_events_per_sec"] > 0
        assert section["engine_overhead_fraction"] >= 0.0
        assert section["disabled_overhead_fraction"] >= 0.0

    def test_self_guard_enforces_the_overhead_budgets(self):
        from repro.bench import guard_regression

        kernel = {"kernel": {"instrumented_events_per_sec": 1000.0}}
        over = {
            **kernel,
            "slo_overhead": {
                "engine_overhead_fraction": 0.08,
                "disabled_overhead_fraction": 0.03,
            },
        }
        failures = guard_regression(over, kernel)
        assert any("engine_overhead_fraction" in f for f in failures)
        assert any("disabled_overhead_fraction" in f for f in failures)

        under = {
            **kernel,
            "slo_overhead": {
                "engine_overhead_fraction": 0.02,
                "disabled_overhead_fraction": 0.0,
            },
        }
        assert guard_regression(under, kernel) == []


class TestCancelChurn:
    def test_churn_section_reports_compaction_bound(self):
        from repro.bench import bench_cancel_churn

        section = bench_cancel_churn(rearms=5_000)
        assert section["rearms"] == 5_000
        assert section["churn_ops_per_sec"] > 0
        # Compaction must bound the physical heap far below the total
        # number of re-arms (uncompacted it would hold all 5000 entries).
        assert section["heap_high_water"] < 1_000


class TestBaselineAndGuard:
    BASELINE = {
        "benchmark": "BENCH_002",
        "kernel": {
            "instrumented_events_per_sec": 1000.0,
            "disabled_events_per_sec": 1100.0,
        },
        "tcp_transfer": {"events_per_sec": 500.0},
        "probe_study": {"wall_time_s": 2.0},
    }

    PAYLOAD = {
        "kernel": {
            "instrumented_events_per_sec": 2000.0,
            "disabled_events_per_sec": 2200.0,
        },
        "tcp_transfer": {"events_per_sec": 750.0},
        "probe_study": {"wall_time_s": 1.0},
    }

    def test_ratios_headline_speedups(self):
        from repro.bench import baseline_ratios

        ratios = baseline_ratios(self.PAYLOAD, self.BASELINE)
        assert ratios["benchmark"] == "BENCH_002"
        assert ratios["kernel_instrumented"] == 2.0
        assert ratios["kernel_disabled"] == 2.0
        assert ratios["tcp_transfer"] == 1.5
        # Wall time halved -> reported as a 2x speedup.
        assert ratios["probe_study"] == 2.0

    def test_guard_passes_at_or_above_floor(self):
        from repro.bench import guard_regression

        assert guard_regression(self.PAYLOAD, self.BASELINE) == []
        assert guard_regression(self.BASELINE, self.BASELINE) == []

    def test_guard_fails_below_floor(self):
        from repro.bench import guard_regression

        slower = {"kernel": {"instrumented_events_per_sec": 900.0}}
        failures = guard_regression(slower, self.BASELINE)
        assert len(failures) == 1
        assert "regressed" in failures[0]

    def test_guard_min_ratio_scales_the_floor(self):
        from repro.bench import guard_regression

        slower = {"kernel": {"instrumented_events_per_sec": 600.0}}
        assert guard_regression(slower, self.BASELINE, min_ratio=0.5) == []
        assert guard_regression(slower, self.BASELINE, min_ratio=0.7) != []

    def test_guard_reports_missing_baseline_kernel(self):
        from repro.bench import guard_regression

        failures = guard_regression(self.PAYLOAD, {"benchmark": "X"})
        assert failures and "no kernel section" in failures[0]

    def test_load_baseline_absent_file_is_none(self, tmp_path):
        from repro.bench import load_baseline

        assert load_baseline(str(tmp_path / "missing.json")) is None
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        assert load_baseline(str(bad)) is None

    def test_run_bench_attaches_baseline_ratios(self, tmp_path, monkeypatch):
        import json as json_mod

        from repro.bench import run_bench

        prior = tmp_path / "BENCH_002.json"
        prior.write_text(json_mod.dumps(self.BASELINE))
        payload = run_bench(workers=1, seeds=1, smoke=True, baseline_path=str(prior))
        assert payload["baseline"]["path"] == str(prior)
        assert payload["baseline"]["ratios"]["kernel_instrumented"] > 0


class TestBenchGuardCli:
    def _fake_payload(self):
        from repro.bench import BENCH_NAME

        return {
            "benchmark": BENCH_NAME,
            "smoke": True,
            "host": {"cpu_count": 1},
            "kernel": {
                "instrumented_events_per_sec": 500.0,
                "disabled_events_per_sec": 600.0,
            },
            "tcp_transfer": {"events_per_sec": 3.0},
            "probe_study": {"wall_time_s": 0.5},
            "multiseed_sweep": {
                "serial_wall_s": 1.0,
                "parallel_wall_s": 0.5,
                "workers": 2,
                "speedup": 2.0,
                "bit_identical": True,
            },
        }

    def test_guard_failure_exits_nonzero(self, capsys, monkeypatch, tmp_path):
        import json as json_mod

        from repro import bench as bench_mod
        from repro.cli import main

        prior = tmp_path / "prior.json"
        prior.write_text(
            json_mod.dumps(
                {"benchmark": "BENCH_002",
                 "kernel": {"instrumented_events_per_sec": 1000.0}}
            )
        )
        monkeypatch.setattr(
            bench_mod, "run_bench", lambda **kwargs: self._fake_payload()
        )
        target = tmp_path / "bench.json"
        code = main(
            ["bench", "--smoke", "--out", str(target),
             "--baseline", str(prior), "--guard"]
        )
        assert code == 1
        assert "regressed" in capsys.readouterr().err

    def test_guard_without_baseline_is_an_error(self, monkeypatch, tmp_path, capsys):
        from repro import bench as bench_mod
        from repro.cli import main

        monkeypatch.setattr(
            bench_mod, "run_bench", lambda **kwargs: self._fake_payload()
        )
        code = main(
            ["bench", "--smoke", "--out", str(tmp_path / "b.json"),
             "--baseline", str(tmp_path / "nope.json"), "--guard"]
        )
        assert code == 2
        assert "readable baseline" in capsys.readouterr().err
