"""Tests for the policy tournament (``repro.experiments.tournament``)."""

import json

import pytest

from repro.experiments import get_experiment
from repro.experiments.tournament import (
    TOURNAMENT_SCENARIOS,
    TournamentConfig,
    build_leaderboard,
    run_tournament,
    scenario_names,
)
from repro.policy import policy_names

SMOKE_CONFIG = TournamentConfig(
    policies=("iw10", "ewma"),
    scenarios=("clean", "chaos_flaky_tools"),
    warmup=2.0,
    duration=6.0,
    probe_interval=2.0,
)


class TestConfig:
    def test_defaults_resolve_to_full_matrix(self):
        config = TournamentConfig()
        assert config.resolved_policies() == policy_names()
        assert config.resolved_scenarios() == scenario_names()

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown polic"):
            TournamentConfig(policies=("nope",)).resolved_policies()

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            TournamentConfig(scenarios=("nope",)).resolved_scenarios()

    def test_scenarios_cover_chaos_and_hybrid(self):
        assert set(TOURNAMENT_SCENARIOS) == {
            "clean",
            "chaos_lossy_agent",
            "chaos_partition",
            "chaos_flaky_tools",
            "hybrid",
        }
        assert TOURNAMENT_SCENARIOS["clean"].chaos is None
        assert TOURNAMENT_SCENARIOS["chaos_partition"].chaos == "chaos_partition"
        assert TOURNAMENT_SCENARIOS["hybrid"].fluid_flows_per_pair > 0


class TestLeaderboard:
    def _cell(self, policy, scenario, new_p90, guard_trips=0):
        return {
            "policy": policy,
            "scenario": scenario,
            "new_p90_ms": new_p90,
            "new_p50_ms": new_p90 / 2 if new_p90 is not None else None,
            "p90_ms": new_p90,
            "guard_trips": guard_trips,
        }

    def test_ranks_by_new_connection_tail(self):
        cells = [
            self._cell("slow", "clean", 900.0),
            self._cell("fast", "clean", 300.0),
            self._cell("slow", "hybrid", 950.0),
            self._cell("fast", "hybrid", 350.0),
        ]
        board = build_leaderboard(cells, ("fast", "slow"), ("clean", "hybrid"))
        assert board["overall"][0]["policy"] == "fast"
        assert board["overall"][0]["rank"] == 1
        assert board["overall"][0]["mean_rank"] == 1.0
        assert board["scenarios"]["clean"][0]["policy"] == "fast"
        assert board["scenarios"]["clean"][1]["policy"] == "slow"

    def test_missing_measurements_rank_last(self):
        cells = [
            self._cell("broken", "clean", None),
            self._cell("ok", "clean", 500.0),
        ]
        board = build_leaderboard(cells, ("broken", "ok"), ("clean",))
        assert board["overall"][0]["policy"] == "ok"
        assert board["scenarios"]["clean"][-1]["policy"] == "broken"

    def test_guard_trips_break_latency_ties(self):
        cells = [
            self._cell("trippy", "clean", 400.0, guard_trips=5),
            self._cell("calm", "clean", 400.0, guard_trips=0),
        ]
        board = build_leaderboard(cells, ("calm", "trippy"), ("clean",))
        assert board["scenarios"]["clean"][0]["policy"] == "calm"


class TestRegistration:
    def test_registered_with_worker_support(self):
        exp = get_experiment("tournament")
        assert exp.simulation_backed
        assert exp.supports_workers

    def test_chaos_experiments_declare_fault_scenarios(self):
        for name in ("chaos_lossy_agent", "chaos_partition", "chaos_flaky_tools"):
            assert get_experiment(name).fault_scenario == name
        assert get_experiment("fig10").fault_scenario is None


class TestEndToEnd:
    def test_serial_and_parallel_runs_are_byte_identical(self):
        serial = run_tournament(SMOKE_CONFIG, workers=1)
        parallel = run_tournament(SMOKE_CONFIG, workers=2)
        assert serial.to_json() == parallel.to_json()

    def test_artifact_shape(self):
        result = run_tournament(SMOKE_CONFIG, workers=2)
        artifact = json.loads(result.to_json())
        assert artifact["tournament"]["policies"] == list(
            SMOKE_CONFIG.resolved_policies()
        )
        assert artifact["tournament"]["scenarios"] == list(
            SMOKE_CONFIG.resolved_scenarios()
        )
        assert len(artifact["cells"]) == 4
        for cell in artifact["cells"]:
            assert cell["probes"]["total"] > 0
            assert cell["completed"] > 0
            assert cell["events_processed"] > 0
            assert cell["slo_violations"] >= cell["slo_resolved"] >= 0
        ranks = [row["rank"] for row in artifact["leaderboard"]["overall"]]
        assert ranks == sorted(ranks)
        for rows in artifact["leaderboard"]["scenarios"].values():
            for row in rows:
                assert "slo_violations" in row
        markdown = result.to_markdown()
        assert "| rank |" in markdown
        assert "| SLO violations |" in markdown
        assert "python -m repro tournament" in markdown
