"""Tests for the multi-seed sweep helper."""

import pytest

from repro.experiments.multiseed import SeedSweepResult, sweep_seeds


class TestSweepSeeds:
    def test_runs_metric_per_seed(self):
        result = sweep_seeds("double", [1, 2, 3], lambda seed: seed * 2.0)
        assert result.values == (2.0, 4.0, 6.0)
        assert result.seeds == (1, 2, 3)

    def test_summary_statistics(self):
        result = sweep_seeds("m", [1, 2, 3], lambda s: float(s))
        assert result.mean == pytest.approx(2.0)
        assert result.min == 1.0
        assert result.max == 3.0
        assert result.stdev == pytest.approx(1.0)

    def test_single_seed_stdev_zero(self):
        result = sweep_seeds("m", [7], lambda s: 3.0)
        assert result.stdev == 0.0

    def test_all_within(self):
        result = sweep_seeds("m", [1, 2], lambda s: float(s))
        assert result.all_within(0.5, 2.5)
        assert not result.all_within(1.5, 2.5)

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            sweep_seeds("m", [], lambda s: 0.0)

    def test_report_mentions_everything(self):
        report = sweep_seeds("metric-x", [1, 2], lambda s: float(s)).report()
        assert "metric-x" in report
        assert "mean=" in report
        assert "seed 1" in report

    def test_workers_one_is_the_serial_path(self):
        result = sweep_seeds("double", [1, 2, 3], lambda s: s * 2.0, workers=1)
        assert result.values == (2.0, 4.0, 6.0)

    def test_parallel_sweep_matches_serial(self):
        from repro.parallel import fork_available

        if not fork_available():
            pytest.skip("platform has no fork start method")
        serial = sweep_seeds("double", [1, 2, 3, 4], lambda s: s * 2.0)
        parallel = sweep_seeds("double", [1, 2, 3, 4], lambda s: s * 2.0, workers=2)
        assert parallel == serial


class TestStabilityOfHeadlineResult:
    """The quickstart gain holds across seeds, not just the default one."""

    @staticmethod
    def cold_gain(seed: int) -> float:
        from repro.core import RiptideAgent, RiptideConfig
        from repro.tcp import TcpConfig
        from repro.testing import TwoHostTestbed, request_response

        bed = TwoHostTestbed(
            rtt=0.100,
            seed=seed,
            client_config=TcpConfig(default_initrwnd=300),
            server_config=TcpConfig(default_initrwnd=300),
        )
        bed.serve_echo()
        cold = request_response(bed, response_bytes=100_000)
        agent = RiptideAgent(bed.server, RiptideConfig(update_interval=0.5))
        agent.start()
        request_response(bed, response_bytes=1_000_000)
        bed.sim.run(until=bed.sim.now + 2.0)
        for sock in list(bed.client.sockets()):
            sock.close()
        bed.sim.run(until=bed.sim.now + 1.0)
        warm = request_response(bed, response_bytes=100_000)
        return 1.0 - warm.total_time / cold.total_time

    def test_gain_stable_across_seeds(self):
        result = sweep_seeds("cold-100KB-gain", [1, 2, 3, 4], self.cold_gain)
        assert result.all_within(0.3, 0.7)
        assert result.stdev < 0.1
