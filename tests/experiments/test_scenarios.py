"""Tests for the shared simulation scenarios (small scale)."""

import pytest

from repro.experiments.scenarios import (
    EVALUATION_POP_CODES,
    ProbeStudyConfig,
    run_paired_probe_study,
    sub_topology,
)


def small_config(**overrides) -> ProbeStudyConfig:
    defaults = dict(
        topology_codes=("LHR", "JFK", "NRT"),
        source_pops=("LHR",),
        warmup=10.0,
        duration=20.0,
        probe_interval=5.0,
        organic_rate=2.0,
    )
    defaults.update(overrides)
    return ProbeStudyConfig(**defaults)


class TestSubTopology:
    def test_selects_requested_pops(self):
        topo = sub_topology(("LHR", "JFK"))
        assert {p.code for p in topo.pops} == {"LHR", "JFK"}

    def test_unknown_code_rejected(self):
        with pytest.raises(KeyError):
            sub_topology(("LHR", "XXX"))

    def test_evaluation_codes_cover_all_buckets(self):
        """The default sub-topology spans every Figure 12-14 RTT bucket
        from the EU vantage point."""
        from repro.cdn.probes import rtt_bucket

        topo = sub_topology(EVALUATION_POP_CODES)
        origin = topo.pop_by_code("LHR")
        buckets = {rtt_bucket(rtt) for rtt in topo.rtts_from(origin).values()}
        assert buckets == {"<50ms", "51-100ms", "101-150ms", ">150ms"}


class TestPairedStudy:
    @pytest.fixture(scope="class")
    def pair(self):
        return run_paired_probe_study(small_config())

    def test_both_arms_produce_probes(self, pair):
        control, riptide = pair
        assert len(control.fleet.completed_results()) > 0
        assert len(riptide.fleet.completed_results()) > 0

    def test_arms_differ_only_in_riptide(self, pair):
        control, riptide = pair
        assert not control.riptide_enabled
        assert riptide.riptide_enabled
        assert not any(a.running for a in control.cluster.all_agents())
        assert all(a.running for a in riptide.cluster.all_agents())

    def test_riptide_arm_learns_routes(self, pair):
        _, riptide = pair
        learned = sum(
            len(agent.learned_table()) for agent in riptide.cluster.all_agents()
        )
        assert learned > 0

    def test_riptide_improves_100kb_probes(self, pair):
        control, riptide = pair
        control_times = control.fleet.completion_times(
            size_bytes=100_000, new_connections_only=True
        )
        riptide_times = riptide.fleet.completion_times(
            size_bytes=100_000, new_connections_only=True
        )
        assert control_times and riptide_times
        control_mean = sum(control_times) / len(control_times)
        riptide_mean = sum(riptide_times) / len(riptide_times)
        assert riptide_mean < control_mean
