"""Differential validation of the hybrid traffic engine.

The acceptance contract for `repro.experiments.hybrid`: at small scale,
packet-granular and fluid background traffic must agree on what Riptide
learns and on the Figure 3/6 probe anchors, across seeds, with both
modes bit-stable under forked workers.
"""

from dataclasses import replace

import pytest

from repro.experiments.hybrid import (
    DIFFERENTIAL_POP_CODES,
    HybridScaleConfig,
    HybridStudyConfig,
    mean_object_segments,
    run_arm,
    run_differential,
    run_scale,
)

#: Seeds the agreement tolerances are held across (>= 3 per the issue).
AGREEMENT_SEEDS = (7, 42, 43)

#: Worst-case relative disagreement of learned per-destination windows.
ADVISORY_TOLERANCE = 0.15
#: Worst-case relative disagreement of probe completion-time medians
#: per (size, RTT bucket) — the Figure 6 anchor.
MEDIAN_TOLERANCE = 0.20
#: Worst-case absolute disagreement of the fraction of probes finishing
#: within ~2 path RTTs — the Figure 3 anchor.
FIRST_RTT_TOLERANCE = 0.20


@pytest.fixture(scope="module", params=AGREEMENT_SEEDS)
def differential(request):
    config = replace(HybridStudyConfig(), seed=request.param)
    return run_differential(config)


class TestDifferentialAgreement:
    def test_both_arms_learn_every_destination(self, differential):
        pairs = differential.advisory_pairs()
        # 3 PoPs, host 0's agent sees the 2 remote prefixes each.
        expected = len(DIFFERENTIAL_POP_CODES) * (
            len(DIFFERENTIAL_POP_CODES) - 1
        )
        assert len(pairs) == expected
        for packet_window, hybrid_window in pairs.values():
            assert packet_window > 0, "packet arm failed to learn"
            assert hybrid_window > 0, "hybrid arm failed to learn"

    def test_advisories_converge_within_tolerance(self, differential):
        assert differential.advisory_max_rel_delta() <= ADVISORY_TOLERANCE, (
            differential.report()
        )

    def test_fig6_anchor_probe_medians_agree(self, differential):
        deltas = differential.anchor_median_deltas()
        assert deltas, "no overlapping probe cells to compare"
        assert differential.anchor_max_rel_delta() <= MEDIAN_TOLERANCE, (
            differential.report()
        )

    def test_fig3_anchor_first_rtt_fractions_agree(self, differential):
        assert (
            differential.first_window_fraction_delta() <= FIRST_RTT_TOLERANCE
        ), differential.report()

    def test_hybrid_arm_removes_packet_work(self, differential):
        """The point of the engine: same learning, far fewer events."""
        assert differential.hybrid.events_processed < (
            differential.packet.events_processed / 3
        )
        assert differential.hybrid.fluid_flows > 0
        assert differential.hybrid.fluid_steps > 0
        assert differential.packet.fluid_flows == 0.0

    def test_report_renders(self, differential):
        report = differential.report()
        assert "learned windows per destination" in report
        assert "advisory max delta" in report


class TestDeterminism:
    #: Shortened run: bit-stability does not need the convergence tail.
    CONFIG = replace(HybridStudyConfig(), warmup=6.0, duration=15.0)

    def test_workers_bit_stable(self):
        serial = run_differential(self.CONFIG)
        forked = run_differential(self.CONFIG, workers=2)
        assert serial.packet.advisories == forked.packet.advisories
        assert serial.hybrid.advisories == forked.hybrid.advisories
        assert (
            serial.packet.events_processed == forked.packet.events_processed
        )
        assert (
            serial.hybrid.events_processed == forked.hybrid.events_processed
        )
        assert serial.hybrid.fluid_flows == forked.hybrid.fluid_flows

        def probe_rows(summary):
            return [
                (p.size_bytes, p.destination_pop, p.total_time)
                for p in summary.probes.completed_results()
            ]

        assert probe_rows(serial.packet) == probe_rows(forked.packet)
        assert probe_rows(serial.hybrid) == probe_rows(forked.hybrid)

    def test_same_seed_same_arm_reproduces(self):
        a = run_arm(self.CONFIG, "hybrid")
        b = run_arm(self.CONFIG, "hybrid")
        assert a.advisories == b.advisories
        assert a.events_processed == b.events_processed
        assert a.fluid_flows == b.fluid_flows

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            run_arm(self.CONFIG, "quantum")


class TestParameterDerivation:
    def test_mean_object_segments_caps_at_max(self):
        from repro.cdn.filesizes import FileSizeDistribution

        sizes = FileSizeDistribution.production_cdn()
        capped = mean_object_segments(sizes, max_object_bytes=50_000)
        uncapped = mean_object_segments(sizes, max_object_bytes=10**9)
        assert 1.0 < capped < uncapped
        # Cap of 50 KB = ~35 segments is a hard ceiling on the mean.
        assert capped <= 35

    def test_deterministic(self):
        from repro.cdn.filesizes import FileSizeDistribution

        sizes = FileSizeDistribution.production_cdn()
        assert mean_object_segments(sizes, 120_000) == mean_object_segments(
            sizes, 120_000
        )


class TestScaleScenario:
    #: Tiny scale config: full 34-PoP topology, miniature population.
    CONFIG = HybridScaleConfig(
        flows_per_pair=50.0, warmup=2.0, duration=6.0, probe_interval=3.0
    )

    def test_reduced_run_carries_every_pair(self):
        result = run_scale(self.CONFIG)
        assert result.pops == 34
        assert result.populations == 34 * 33
        assert result.flows_min == pytest.approx(34 * 33 * 50.0, rel=1e-6)
        assert result.fluid_steps > 0
        assert result.probes_completed > 0
        assert result.learned_routes > 0
        assert not result.sustained_million_flows
        report = result.report()
        assert "34" in report and ">= 10^6 open flows" in report

    def test_run_entry_point_applies_overrides(self):
        from repro.experiments.hybrid import run

        result = run(
            config=self.CONFIG, flows_per_pair=25.0, duration=6.0, seed=7
        )
        assert result.flows_min == pytest.approx(34 * 33 * 25.0, rel=1e-6)

    def test_registered_in_the_experiment_registry(self):
        from repro.experiments import get_experiment

        experiment = get_experiment("hybrid")
        assert experiment.simulation_backed
        assert "10^6" in experiment.description
