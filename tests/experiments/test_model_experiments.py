"""Tests for the model-based experiment harnesses (Figures 2-6, Table II)."""

import pytest

from repro.experiments import (
    fig02_filesizes,
    fig03_rtt_cdf,
    fig04_theoretical_gain,
    fig05_rtt_distribution,
    fig06_transfer_time_model,
    table2_pops,
)


class TestFig02:
    @pytest.fixture(scope="class")
    def result(self):
        return fig02_filesizes.run(samples=50_000)

    def test_paper_anchor_54_percent(self, result):
        assert result.fraction_exceeding_default_window == pytest.approx(
            0.54, abs=0.02
        )

    def test_sampled_matches_analytic(self, result):
        assert result.fraction_exceeding_default_window == pytest.approx(
            result.analytic_fraction_exceeding, abs=0.01
        )

    def test_report_mentions_anchor(self, result):
        assert "54%" in result.report()


class TestFig03:
    @pytest.fixture(scope="class")
    def result(self):
        return fig03_rtt_cdf.run(samples=50_000)

    def test_iw50_anchor(self, result):
        assert result.extra_first_rtt_at_50 == pytest.approx(0.31, abs=0.03)

    def test_iw100_anchor(self, result):
        assert result.not_first_rtt_at_100 == pytest.approx(0.15, abs=0.02)

    def test_fractions_monotone_in_window(self, result):
        one_rtt = [result.fraction_within(iw, 1) for iw in (10, 25, 50, 100)]
        assert one_rtt == sorted(one_rtt)

    def test_fractions_monotone_in_rtts(self, result):
        by_rtts = [result.fraction_within(10, r) for r in (1, 2, 3, 4)]
        assert by_rtts == sorted(by_rtts)

    def test_report_renders(self, result):
        assert "initcwnd" in result.report()


class TestFig04:
    @pytest.fixture(scope="class")
    def result(self):
        return fig04_theoretical_gain.run()

    def test_no_gain_below_default_window(self, result):
        assert result.gain_at(100, 10_000) == 0.0

    def test_gain_region_15kb_to_1mb(self, result):
        """Paper: primary improvements between 15 KB and 1000 KB."""
        assert result.gain_at(100, 100_000) >= 0.5
        assert result.gain_at(100, 500_000) >= 0.4

    def test_gain_diminishes_for_large_files(self, result):
        assert result.gain_at(100, 30_000_000) < result.peak_gain(100)

    def test_larger_windows_gain_at_least_as_much_at_peak(self, result):
        assert result.peak_gain(100) >= result.peak_gain(50) >= result.peak_gain(25)

    def test_invalid_points_rejected(self):
        with pytest.raises(ValueError):
            fig04_theoretical_gain.run(points=1)


class TestFig05:
    @pytest.fixture(scope="class")
    def result(self):
        return fig05_rtt_distribution.run()

    def test_median_over_125ms(self, result):
        """The paper's headline anchor for Figure 5."""
        assert result.cdf.median > 0.125

    def test_about_half_of_pairs_over_125ms(self, result):
        assert 0.4 <= result.fraction_over_125ms <= 0.75

    def test_population_is_all_pairs(self, result):
        assert len(result.cdf) == 34 * 33 // 2


class TestFig06:
    @pytest.fixture(scope="class")
    def result(self):
        return fig06_transfer_time_model.run()

    def test_median_penalty_anchor(self, result):
        """Paper: median IW10 transfer is >280 ms slower than IW100."""
        assert result.median_penalty_vs_100() > 0.280

    def test_larger_windows_never_slower(self, result):
        for p in (0.25, 0.5, 0.75, 0.9):
            times = [result.cdfs[iw].quantile(p) for iw in (10, 25, 50, 100)]
            assert times == sorted(times, reverse=True)

    def test_p90_penalty_positive(self, result):
        assert result.p90_penalty_vs_100() > 0.0


class TestTable2:
    def test_census_matches_paper(self):
        result = table2_pops.run()
        assert result.matches_paper
        assert result.total == 34

    def test_report_lists_continents(self):
        report = table2_pops.run().report()
        assert "Europe" in report and "Oceania" in report
