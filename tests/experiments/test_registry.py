"""Tests for the experiment registry."""

import pytest

from repro.experiments import EXPERIMENTS, get_experiment, list_experiments


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {
            "fig02", "fig03", "fig04", "fig05", "fig06", "table2",
            "fig10", "fig11", "fig12_14", "fig15_16", "edge_cases",
            "ext_diurnal", "ext_advisory",
            "chaos_lossy_agent", "chaos_partition", "chaos_flaky_tools",
            "hybrid", "tournament",
        }
        assert set(EXPERIMENTS) == expected

    def test_get_experiment(self):
        exp = get_experiment("fig02")
        assert exp.experiment_id == "fig02"
        assert callable(exp.run)

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("fig99")

    def test_descriptions_non_empty(self):
        assert all(exp.description for exp in list_experiments())

    def test_simulation_flags(self):
        assert not get_experiment("fig03").simulation_backed
        assert get_experiment("fig10").simulation_backed

    def test_model_experiments_runnable(self):
        """Every non-simulation experiment runs quickly end to end."""
        for exp in list_experiments():
            if exp.simulation_backed:
                continue
            if exp.experiment_id in ("fig02", "fig03"):
                result = exp.run(samples=5_000)
            else:
                result = exp.run()
            assert result.report()
