"""Engine-level tests for ``repro lint``: CLI, JSON schema, baselines.

The self-check at the bottom is the PR's acceptance gate: the shipped
tree must lint clean, so the analyzer stays a required CI job rather
than a dashboard of known failures.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.lint import (
    INDEX_SCHEMA_VERSION,
    LINT_SCHEMA_VERSION,
    RULE_CODES,
    LintUsageError,
    run_lint,
)
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]

HAZARD = "import time\n\ndef tick():\n    return time.time()\n"


@pytest.fixture(autouse=True)
def _isolated_cwd(tmp_path_factory, monkeypatch):
    """The CLI writes its index cache to the cwd; keep it out of the repo."""
    monkeypatch.chdir(tmp_path_factory.mktemp("lint-cwd"))


@pytest.fixture
def hazard_file(tmp_path):
    path = tmp_path / "hazard.py"
    path.write_text(HAZARD)
    return path


# -- selection ------------------------------------------------------------


def test_select_limits_rules(hazard_file):
    assert [f.code for f in run_lint([str(hazard_file)], select=["DET001"]).findings] == ["DET001"]
    assert run_lint([str(hazard_file)], select=["SLOT001"]).findings == []


def test_ignore_removes_rules(hazard_file):
    assert run_lint([str(hazard_file)], ignore=["DET001"]).findings == []


def test_unknown_code_is_a_usage_error(hazard_file):
    with pytest.raises(LintUsageError, match="unknown rule code"):
        run_lint([str(hazard_file)], select=["NOPE001"])
    with pytest.raises(LintUsageError, match="no rules"):
        run_lint([str(hazard_file)], ignore=list(RULE_CODES))


def test_missing_path_is_a_usage_error(tmp_path):
    with pytest.raises(LintUsageError, match="no such file"):
        run_lint([str(tmp_path / "missing")])


def test_syntax_error_becomes_parse_finding(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n")
    result = run_lint([str(bad)])
    (finding,) = result.findings
    assert finding.code == "PARSE"


def test_findings_are_sorted_and_stable(tmp_path):
    for name in ("b.py", "a.py"):
        (tmp_path / name).write_text(HAZARD)
    first = run_lint([str(tmp_path)])
    second = run_lint([str(tmp_path)])
    assert [f.render() for f in first.findings] == [f.render() for f in second.findings]
    assert [f.path for f in first.findings] == sorted(f.path for f in first.findings)


# -- JSON schema ----------------------------------------------------------


def test_json_schema(hazard_file):
    payload = json.loads(run_lint([str(hazard_file)]).to_json())
    assert payload["version"] == LINT_SCHEMA_VERSION
    assert payload["files_scanned"] == 1
    assert payload["counts"] == {"DET001": 1}
    assert payload["index"] == {"modules": 1, "cached": 0}
    assert payload["baseline"] == {
        "used": False,
        "entries": 0,
        "matched_by_code": {},
        "near_stale": 0,
    }
    assert payload["suppressed"] == {"inline": 0, "baseline": 0}
    assert payload["stale_baseline"] == []
    (finding,) = payload["findings"]
    assert set(finding) == {"code", "message", "path", "line", "col", "fingerprint"}
    assert finding["code"] == "DET001"
    assert finding["line"] == 4
    assert isinstance(finding["fingerprint"], str) and finding["fingerprint"]


def test_render_github(hazard_file):
    out = run_lint([str(hazard_file)]).render_github()
    error, notice = out.splitlines()
    assert error.startswith("::error file=")
    assert "title=DET001" in error and ",line=4," in error
    assert notice.startswith("::notice title=repro-lint::")
    assert "index 1 module(s), 0 cached" in notice


# -- index cache ----------------------------------------------------------


def test_index_cache_round_trip(tmp_path, hazard_file):
    cache = tmp_path / "cache.json"
    first = run_lint([str(hazard_file)], cache_path=str(cache))
    assert (first.indexed_modules, first.cached_modules) == (1, 0)
    second = run_lint([str(hazard_file)], cache_path=str(cache))
    assert second.cached_modules == 1
    assert [f.render() for f in first.findings] == [
        f.render() for f in second.findings
    ]


def test_cache_invalidated_on_edit(tmp_path, hazard_file):
    cache = tmp_path / "cache.json"
    run_lint([str(hazard_file)], cache_path=str(cache))
    hazard_file.write_text(HAZARD + "x = 1\n")
    assert run_lint([str(hazard_file)], cache_path=str(cache)).cached_modules == 0


def test_corrupt_cache_is_discarded_and_rewritten(tmp_path, hazard_file):
    cache = tmp_path / "cache.json"
    cache.write_text("{not json")
    result = run_lint([str(hazard_file)], cache_path=str(cache))
    assert result.cached_modules == 0
    assert result.counts() == {"DET001": 1}
    assert json.loads(cache.read_text())["version"] == INDEX_SCHEMA_VERSION


def test_wrong_cache_version_is_discarded(tmp_path, hazard_file):
    cache = tmp_path / "cache.json"
    run_lint([str(hazard_file)], cache_path=str(cache))
    payload = json.loads(cache.read_text())
    payload["version"] = INDEX_SCHEMA_VERSION + 1
    cache.write_text(json.dumps(payload))
    assert run_lint([str(hazard_file)], cache_path=str(cache)).cached_modules == 0


# -- baseline -------------------------------------------------------------


def write_baseline(tmp_path, entries):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 1, "entries": entries}))
    return path


def test_baseline_suppresses_matching_findings(tmp_path, hazard_file):
    fingerprint = run_lint([str(hazard_file)]).findings[0].fingerprint
    baseline = write_baseline(
        tmp_path, [{"fingerprint": fingerprint, "reason": "tracked debt"}]
    )
    result = run_lint([str(hazard_file)], baseline_path=str(baseline))
    assert result.findings == []
    assert result.suppressed_baseline == 1
    assert result.stale_baseline == []
    assert result.clean


def test_baseline_summary_line(tmp_path, hazard_file):
    fingerprint = run_lint([str(hazard_file)]).findings[0].fingerprint
    baseline = write_baseline(
        tmp_path, [{"fingerprint": fingerprint, "reason": "tracked debt"}]
    )
    result = run_lint([str(hazard_file)], baseline_path=str(baseline))
    assert result.baseline_used
    assert result.baseline_entries == 1
    assert result.baseline_counts == {"DET001": 1}
    # Matched exactly once: the next fix strands this entry.
    assert result.baseline_near_stale == 1
    summary = result.baseline_summary()
    assert summary == (
        "baseline: 1 entry, matched by code: DET001=1, "
        "1 nearing staleness, 0 stale"
    )
    assert summary in result.render_text()
    payload = json.loads(result.to_json())
    assert payload["baseline"] == {
        "used": True,
        "entries": 1,
        "matched_by_code": {"DET001": 1},
        "near_stale": 1,
    }


def test_baseline_entry_matched_twice_is_not_near_stale(tmp_path):
    target = tmp_path / "two.py"
    target.write_text("import time\n\ndef a():\n    return time.time()\n")
    findings = run_lint([str(target)]).findings
    assert len(findings) == 1
    # Duplicate the hazard so one fingerprint matches two findings.
    target.write_text(
        "import time\n\ndef a():\n    return time.time()\n"
        "\ndef b():\n    return time.time()\n"
    )
    findings = run_lint([str(target)]).findings
    fingerprints = {f.fingerprint for f in findings}
    baseline = write_baseline(
        tmp_path,
        [{"fingerprint": fp, "reason": "debt"} for fp in fingerprints],
    )
    result = run_lint([str(target)], baseline_path=str(baseline))
    assert result.findings == []
    if len(fingerprints) == 1:
        assert result.baseline_near_stale == 0
    else:
        assert result.baseline_near_stale == len(fingerprints)


def test_stale_baseline_entry_fails_the_run(tmp_path, hazard_file):
    hazard_file.write_text("def tick(sim):\n    return sim.now\n")  # fixed!
    baseline = write_baseline(
        tmp_path, [{"fingerprint": "00" * 8, "reason": "was fixed"}]
    )
    result = run_lint([str(hazard_file)], baseline_path=str(baseline))
    assert result.findings == []
    assert result.stale_baseline == [
        {"fingerprint": "00" * 8, "reason": "was fixed"}
    ]
    assert not result.clean
    assert "stale entry" in result.render_text()


def test_baseline_entry_requires_reason(tmp_path, hazard_file):
    baseline = write_baseline(tmp_path, [{"fingerprint": "ab" * 8}])
    with pytest.raises(LintUsageError, match="reason"):
        run_lint([str(hazard_file)], baseline_path=str(baseline))


def test_fingerprint_survives_line_moves(tmp_path, hazard_file):
    before = run_lint([str(hazard_file)]).findings[0]
    hazard_file.write_text("# a new comment line\n" + HAZARD)
    after = run_lint([str(hazard_file)]).findings[0]
    assert before.line != after.line
    assert before.fingerprint == after.fingerprint


# -- CLI ------------------------------------------------------------------


def test_cli_exit_codes(tmp_path, hazard_file, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("def tick(sim):\n    return sim.now\n")
    assert main(["lint", str(clean)]) == 0
    assert main(["lint", str(hazard_file)]) == 1
    assert main(["lint", str(hazard_file), "--select", "BOGUS"]) == 2
    capsys.readouterr()


def test_cli_json_output(hazard_file, capsys):
    assert main(["lint", str(hazard_file), "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts"] == {"DET001": 1}


def test_cli_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in RULE_CODES:
        assert code in out


def test_cli_survives_broken_pipe(tmp_path):
    """`repro lint ... | head -1` must not traceback on SIGPIPE.

    The findings output must exceed the kernel pipe buffer (64 KiB) or
    the write completes before ``head`` exits and nothing is exercised.
    """
    import subprocess
    import sys

    body = "import time\n" + "t = time.time()\n" * 1000
    (tmp_path / "big.py").write_text(body)
    result = subprocess.run(
        f"{sys.executable} -m repro lint {tmp_path} | head -1",
        shell=True,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert "Traceback" not in result.stderr
    assert "BrokenPipeError" not in result.stderr


def test_cli_select_and_ignore(hazard_file, capsys):
    assert main(["lint", str(hazard_file), "--ignore", "DET001"]) == 0
    assert main(["lint", str(hazard_file), "--select", "DET001,SIM001"]) == 1
    capsys.readouterr()


def test_cli_unknown_code_lists_known_codes(hazard_file, capsys):
    assert main(["lint", str(hazard_file), "--select", "NOPE001"]) == 2
    err = capsys.readouterr().err
    assert "unknown rule code" in err
    for code in RULE_CODES:
        assert code in err


def test_cli_codes_are_case_insensitive(hazard_file, capsys):
    assert main(["lint", str(hazard_file), "--select", "det001"]) == 1
    assert main(["lint", str(hazard_file), "--ignore", "det001"]) == 0
    capsys.readouterr()


def test_cli_format_github(hazard_file, capsys):
    assert main(["lint", str(hazard_file), "--format", "github"]) == 1
    out = capsys.readouterr().out
    assert out.startswith("::error file=")
    assert "::notice title=repro-lint::" in out


def test_cli_cache_default_and_no_cache(hazard_file, capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    main(["lint", str(hazard_file), "--no-cache"])
    assert not (tmp_path / ".repro-lint-cache.json").exists()
    main(["lint", str(hazard_file)])
    assert (tmp_path / ".repro-lint-cache.json").exists()
    capsys.readouterr()
    assert main(["lint", str(hazard_file), "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["index"]["cached"] == 1


# -- self-check -----------------------------------------------------------


def test_shipped_tree_lints_clean():
    """`repro lint src/` exits 0 on the tree this repo ships."""
    result = run_lint([str(REPO_ROOT / "src")])
    assert [f.render() for f in result.findings] == []
    assert result.clean
    assert result.files_scanned > 100


def test_cli_on_shipped_tree(capsys):
    assert main(["lint", str(REPO_ROOT / "src")]) == 0
    capsys.readouterr()
