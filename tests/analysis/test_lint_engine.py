"""Engine-level tests for ``repro lint``: CLI, JSON schema, baselines.

The self-check at the bottom is the PR's acceptance gate: the shipped
tree must lint clean, so the analyzer stays a required CI job rather
than a dashboard of known failures.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.lint import (
    LINT_SCHEMA_VERSION,
    RULE_CODES,
    LintUsageError,
    run_lint,
)
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]

HAZARD = "import time\n\ndef tick():\n    return time.time()\n"


@pytest.fixture
def hazard_file(tmp_path):
    path = tmp_path / "hazard.py"
    path.write_text(HAZARD)
    return path


# -- selection ------------------------------------------------------------


def test_select_limits_rules(hazard_file):
    assert [f.code for f in run_lint([str(hazard_file)], select=["DET001"]).findings] == ["DET001"]
    assert run_lint([str(hazard_file)], select=["SLOT001"]).findings == []


def test_ignore_removes_rules(hazard_file):
    assert run_lint([str(hazard_file)], ignore=["DET001"]).findings == []


def test_unknown_code_is_a_usage_error(hazard_file):
    with pytest.raises(LintUsageError, match="unknown rule code"):
        run_lint([str(hazard_file)], select=["NOPE001"])
    with pytest.raises(LintUsageError, match="no rules"):
        run_lint([str(hazard_file)], ignore=list(RULE_CODES))


def test_missing_path_is_a_usage_error(tmp_path):
    with pytest.raises(LintUsageError, match="no such file"):
        run_lint([str(tmp_path / "missing")])


def test_syntax_error_becomes_parse_finding(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n")
    result = run_lint([str(bad)])
    (finding,) = result.findings
    assert finding.code == "PARSE"


def test_findings_are_sorted_and_stable(tmp_path):
    for name in ("b.py", "a.py"):
        (tmp_path / name).write_text(HAZARD)
    first = run_lint([str(tmp_path)])
    second = run_lint([str(tmp_path)])
    assert [f.render() for f in first.findings] == [f.render() for f in second.findings]
    assert [f.path for f in first.findings] == sorted(f.path for f in first.findings)


# -- JSON schema ----------------------------------------------------------


def test_json_schema(hazard_file):
    payload = json.loads(run_lint([str(hazard_file)]).to_json())
    assert payload["version"] == LINT_SCHEMA_VERSION
    assert payload["files_scanned"] == 1
    assert payload["counts"] == {"DET001": 1}
    assert payload["suppressed"] == {"inline": 0, "baseline": 0}
    assert payload["stale_baseline"] == []
    (finding,) = payload["findings"]
    assert set(finding) == {"code", "message", "path", "line", "col", "fingerprint"}
    assert finding["code"] == "DET001"
    assert finding["line"] == 4
    assert isinstance(finding["fingerprint"], str) and finding["fingerprint"]


# -- baseline -------------------------------------------------------------


def write_baseline(tmp_path, entries):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 1, "entries": entries}))
    return path


def test_baseline_suppresses_matching_findings(tmp_path, hazard_file):
    fingerprint = run_lint([str(hazard_file)]).findings[0].fingerprint
    baseline = write_baseline(
        tmp_path, [{"fingerprint": fingerprint, "reason": "tracked debt"}]
    )
    result = run_lint([str(hazard_file)], baseline_path=str(baseline))
    assert result.findings == []
    assert result.suppressed_baseline == 1
    assert result.stale_baseline == []
    assert result.clean


def test_stale_baseline_entry_fails_the_run(tmp_path, hazard_file):
    hazard_file.write_text("def tick(sim):\n    return sim.now\n")  # fixed!
    baseline = write_baseline(
        tmp_path, [{"fingerprint": "00" * 8, "reason": "was fixed"}]
    )
    result = run_lint([str(hazard_file)], baseline_path=str(baseline))
    assert result.findings == []
    assert result.stale_baseline == [
        {"fingerprint": "00" * 8, "reason": "was fixed"}
    ]
    assert not result.clean
    assert "stale entry" in result.render_text()


def test_baseline_entry_requires_reason(tmp_path, hazard_file):
    baseline = write_baseline(tmp_path, [{"fingerprint": "ab" * 8}])
    with pytest.raises(LintUsageError, match="reason"):
        run_lint([str(hazard_file)], baseline_path=str(baseline))


def test_fingerprint_survives_line_moves(tmp_path, hazard_file):
    before = run_lint([str(hazard_file)]).findings[0]
    hazard_file.write_text("# a new comment line\n" + HAZARD)
    after = run_lint([str(hazard_file)]).findings[0]
    assert before.line != after.line
    assert before.fingerprint == after.fingerprint


# -- CLI ------------------------------------------------------------------


def test_cli_exit_codes(tmp_path, hazard_file, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("def tick(sim):\n    return sim.now\n")
    assert main(["lint", str(clean)]) == 0
    assert main(["lint", str(hazard_file)]) == 1
    assert main(["lint", str(hazard_file), "--select", "BOGUS"]) == 2
    capsys.readouterr()


def test_cli_json_output(hazard_file, capsys):
    assert main(["lint", str(hazard_file), "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts"] == {"DET001": 1}


def test_cli_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in RULE_CODES:
        assert code in out


def test_cli_survives_broken_pipe(tmp_path):
    """`repro lint ... | head -1` must not traceback on SIGPIPE.

    The findings output must exceed the kernel pipe buffer (64 KiB) or
    the write completes before ``head`` exits and nothing is exercised.
    """
    import subprocess
    import sys

    body = "import time\n" + "t = time.time()\n" * 1000
    (tmp_path / "big.py").write_text(body)
    result = subprocess.run(
        f"{sys.executable} -m repro lint {tmp_path} | head -1",
        shell=True,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert "Traceback" not in result.stderr
    assert "BrokenPipeError" not in result.stderr


def test_cli_select_and_ignore(hazard_file, capsys):
    assert main(["lint", str(hazard_file), "--ignore", "DET001"]) == 0
    assert main(["lint", str(hazard_file), "--select", "DET001,SIM001"]) == 1
    capsys.readouterr()


# -- self-check -----------------------------------------------------------


def test_shipped_tree_lints_clean():
    """`repro lint src/` exits 0 on the tree this repo ships."""
    result = run_lint([str(REPO_ROOT / "src")])
    assert [f.render() for f in result.findings] == []
    assert result.clean
    assert result.files_scanned > 100


def test_cli_on_shipped_tree(capsys):
    assert main(["lint", str(REPO_ROOT / "src")]) == 0
    capsys.readouterr()
