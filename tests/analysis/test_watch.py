"""Unit tests for the live-watch frame builder and renderer."""

import json

import pytest

from repro.analysis.watch import (
    build_watch_frames,
    render_watch,
    watch_frames_to_json,
)
from repro.obs import EventType, Instrumentation
from repro.obs.slo import BurnRateRule


def seeded_instrumentation() -> Instrumentation:
    """Two windows of trace events, probe samples and one alert walk."""
    obs = Instrumentation()
    for t in (0.5, 1.0, 6.0):
        obs.trace.record(t, EventType.CONN_OPENED, "srv")
    obs.tsdb.record(1.0, "probes", "probe_latency", 0.2)
    obs.tsdb.record(2.0, "probes", "probe_latency", 0.4)
    obs.tsdb.record(6.0, "probes", "probe_latency", 0.6)
    rule = BurnRateRule(
        severity="page", long_window=15.0, short_window=5.0, burn_factor=2.0
    )
    episode = obs.alerts.begin(1.0, "probe_latency_p90", "page", "probes", rule)
    episode.firing_at = 6.0
    episode.resolved_at = 9.0
    return obs


class TestBuildFrames:
    def test_frames_cover_every_window_to_the_last_stamp(self):
        frames = build_watch_frames(seeded_instrumentation(), interval=5.0)
        # Data extends to t=9 (the resolution stamp) -> windows 0 and 1.
        assert [f["index"] for f in frames] == [0, 1]
        assert [f["time"] for f in frames] == [5.0, 10.0]
        assert [f["events"] for f in frames] == [2, 1]

    def test_probe_p90_per_window(self):
        frames = build_watch_frames(seeded_instrumentation(), interval=5.0)
        assert frames[0]["probe_latency_p90"] == {"probes": 0.4}
        assert frames[1]["probe_latency_p90"] == {"probes": 0.6}

    def test_alert_states_as_of_frame_end(self):
        frames = build_watch_frames(seeded_instrumentation(), interval=5.0)
        # Frame 0 ends at t=5: the episode is pending (fires at 6).
        assert (frames[0]["alerts_pending"], frames[0]["alerts_firing"]) == (1, 0)
        # Frame 1 ends at t=10: fired at 6 but resolved at 9 -> clear.
        assert (frames[1]["alerts_pending"], frames[1]["alerts_firing"]) == (0, 0)

    def test_firing_alert_listed_with_identity(self):
        obs = seeded_instrumentation()
        frames = build_watch_frames(obs, interval=2.0)
        # Window ending at t=8 sits inside [firing_at=6, resolved_at=9).
        frame = next(f for f in frames if f["time"] == 8.0)
        (alert,) = frame["firing"]
        assert alert["slo"] == "probe_latency_p90"
        assert alert["severity"] == "page"
        assert alert["source"] == "probes"

    def test_empty_instrumentation_yields_no_frames(self):
        assert build_watch_frames(Instrumentation()) == []

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            build_watch_frames(Instrumentation(), interval=0.0)


class TestRendering:
    def test_render_is_one_line_per_frame(self):
        frames = build_watch_frames(seeded_instrumentation(), interval=5.0)
        text = render_watch(frames, experiment="unit")
        lines = text.splitlines()
        assert lines[0] == "== watch: unit (2 frames) =="
        assert len(lines) == 3
        assert "probes=400ms" in lines[1]
        assert "alerts: 1p/0f" in lines[1]

    def test_firing_frame_names_the_alert(self):
        frames = build_watch_frames(seeded_instrumentation(), interval=2.0)
        text = render_watch(frames)
        assert "[probe_latency_p90/page]" in text

    def test_json_round_trip(self):
        frames = build_watch_frames(seeded_instrumentation(), interval=5.0)
        payload = json.loads(watch_frames_to_json(frames, experiment="unit"))
        assert payload["experiment"] == "unit"
        assert payload["frames"] == frames
