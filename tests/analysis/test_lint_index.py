"""Pass-1 indexer and cross-module resolution tests.

These drive the project index directly — the layer every whole-program
rule (DET004, FRK001/002, FLT001) stands on: cycle-bearing import
graphs, star imports, re-exported names, and a fixture package whose
call graph crosses property and classmethod edges.
"""

from __future__ import annotations

import ast
import json
import textwrap

from repro.analysis.lint import (
    INDEX_SCHEMA_VERSION,
    ModuleIndex,
    ProjectIndex,
    index_module,
)
from repro.analysis.lint.index import content_hash, import_name_for


def build_index(tmp_path, files):
    """Write ``{relative path: source}`` and index the lot."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    modules = []
    for rel in files:
        path = tmp_path / rel
        source = path.read_text()
        modules.append(
            index_module(str(path), str(path), source, ast.parse(source))
        )
    return ProjectIndex(modules), {rel: str(tmp_path / rel) for rel in files}


# -- import names ---------------------------------------------------------


def test_import_name_walks_packages(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "__init__.py").write_text("")
    (tmp_path / "pkg" / "impl.py").write_text("")
    (tmp_path / "loose.py").write_text("")
    assert import_name_for(str(tmp_path / "pkg" / "__init__.py")) == "pkg"
    assert import_name_for(str(tmp_path / "pkg" / "impl.py")) == "pkg.impl"
    assert import_name_for(str(tmp_path / "loose.py")) == "loose"


# -- cycles ---------------------------------------------------------------


def test_import_cycle_terminates(tmp_path):
    """Mutually recursive modules must resolve, not recurse forever."""
    index, paths = build_index(
        tmp_path,
        {
            "a.py": """
                import b

                def f():
                    return b.g()
                """,
            "b.py": """
                import a

                def g():
                    return a.f()
                """,
        },
    )
    mod_a = index.module_for(paths["a.py"])
    taint = index.return_taint(mod_a, "f")
    assert taint.value == frozenset() and taint.order == frozenset()


def test_taint_flows_through_cyclic_modules(tmp_path):
    """A cycle in the import graph must not block one-way taint flow."""
    index, paths = build_index(
        tmp_path,
        {
            "a.py": """
                import time

                import b

                def f():
                    return time.time()

                def ping():
                    return b.g()
                """,
            "b.py": """
                import a

                def g():
                    return a.f()
                """,
        },
    )
    mod_b = index.module_for(paths["b.py"])
    taint = index.return_taint(mod_b, "g")
    assert any("time.time()" in reason for reason in taint.value)


# -- star imports and re-exports ------------------------------------------


def test_star_import_resolution(tmp_path):
    index, paths = build_index(
        tmp_path,
        {
            "pkg/__init__.py": "from pkg.impl import *\n",
            "pkg/impl.py": """
                import time

                def tick():
                    return time.time()
                """,
            "consumer.py": """
                from pkg import tick

                def wrapped():
                    return tick()
                """,
        },
    )
    consumer = index.module_for(paths["consumer.py"])
    resolved = index.resolve_callable(consumer, None, "tick")
    assert resolved is not None
    defining, qualname = resolved
    assert defining.import_name == "pkg.impl" and qualname == "tick"
    taint = index.return_taint(consumer, "wrapped")
    assert any("time.time()" in reason for reason in taint.value)


def test_reexport_resolution(tmp_path):
    index, paths = build_index(
        tmp_path,
        {
            "pkg/__init__.py": "from pkg.impl import tick\n",
            "pkg/impl.py": """
                import time

                def tick():
                    return time.time()
                """,
            "consumer.py": """
                import pkg

                def wrapped():
                    return pkg.tick()
                """,
        },
    )
    consumer = index.module_for(paths["consumer.py"])
    resolved = index.resolve_callable(consumer, None, "pkg.tick")
    assert resolved is not None
    assert resolved[0].import_name == "pkg.impl"


# -- method kinds and call edges ------------------------------------------


CLOCK = """
    import time

    class Clock:
        @property
        def now(self):
            return time.time()

        @classmethod
        def make(cls):
            return cls()

        @staticmethod
        def zero():
            return 0.0

        def deadline(self):
            return self.now + 5.0
    """


def test_property_and_classmethod_kinds(tmp_path):
    index, paths = build_index(tmp_path, {"clock.py": CLOCK})
    mod = index.module_for(paths["clock.py"])
    cls = mod.classes["Clock"]
    assert cls.method_kind("now") == "property"
    assert cls.method_kind("make") == "classmethod"
    assert cls.method_kind("zero") == "staticmethod"
    assert cls.method_kind("deadline") == "method"


def test_taint_crosses_property_edge(tmp_path):
    """``self.now`` is a call edge when ``now`` is a property."""
    index, paths = build_index(tmp_path, {"clock.py": CLOCK})
    mod = index.module_for(paths["clock.py"])
    taint = index.return_taint(mod, "Clock.deadline")
    assert any("time.time()" in reason for reason in taint.value)


def test_method_resolution_through_bases(tmp_path):
    index, paths = build_index(
        tmp_path,
        {
            "base.py": """
                import time

                class Base:
                    def stamp(self):
                        return time.time()
                """,
            "child.py": """
                from base import Base

                class Child(Base):
                    def when(self):
                        return self.stamp()
                """,
        },
    )
    child_mod = index.module_for(paths["child.py"])
    taint = index.return_taint(child_mod, "Child.when")
    assert any("time.time()" in reason for reason in taint.value)


# -- payload round-trip ---------------------------------------------------


def test_payload_roundtrip_preserves_resolution(tmp_path):
    index, paths = build_index(
        tmp_path,
        {
            "pkg/__init__.py": "from pkg.impl import *\n",
            "pkg/impl.py": """
                import time

                def tick():
                    return time.time()
                """,
            "consumer.py": """
                from pkg import tick

                def wrapped():
                    return tick()
                """,
        },
    )
    # Round-trip every module through JSON, exactly as the cache does.
    revived = [
        ModuleIndex.from_payload(json.loads(json.dumps(m.to_payload())))
        for m in index.modules.values()
    ]
    rebuilt = ProjectIndex(revived)
    consumer = rebuilt.module_for(paths["consumer.py"])
    assert consumer is not None
    taint = rebuilt.return_taint(consumer, "wrapped")
    assert any("time.time()" in reason for reason in taint.value)


def test_content_hash_tracks_source(tmp_path):
    assert content_hash("x = 1\n") == content_hash("x = 1\n")
    assert content_hash("x = 1\n") != content_hash("x = 2\n")
    assert isinstance(INDEX_SCHEMA_VERSION, int)
