"""Per-rule fixture corpus for ``repro.analysis.lint``.

Each rule gets positive snippets (must fire, with the right code and
line) and negative snippets (the compliant idiom must stay silent).
Fixture files live in tmp directories outside the ``repro`` package, so
every rule applies regardless of its module exemptions.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis.lint import run_lint


def lint_snippet(tmp_path, source: str, **kwargs):
    path = tmp_path / "fixture.py"
    path.write_text(textwrap.dedent(source))
    return run_lint([str(path)], **kwargs)


def codes(result) -> list[str]:
    return [finding.code for finding in result.findings]


# -- DET001: wall clock / entropy ----------------------------------------


DET001_POSITIVE = [
    "import time\n\ndef tick():\n    return time.time()\n",
    "import time\n\ndef tick():\n    return time.perf_counter()\n",
    "from time import monotonic\n\ndef tick():\n    return monotonic()\n",
    "import random\n\ndef draw():\n    return random.random()\n",
    "import random\n\ndef draw():\n    return random.choice([1, 2])\n",
    "from random import randint\n\ndef draw():\n    return randint(0, 7)\n",
    "import random\n\ndef make_rng():\n    return random.Random()\n",
    "import datetime\n\ndef stamp():\n    return datetime.datetime.now()\n",
    "from datetime import datetime\n\ndef stamp():\n    return datetime.now()\n",
    "import numpy as np\n\ndef draw():\n    return np.random.uniform()\n",
]


@pytest.mark.parametrize("source", DET001_POSITIVE)
def test_det001_fires(tmp_path, source):
    result = lint_snippet(tmp_path, source)
    assert codes(result) == ["DET001"]


DET001_NEGATIVE = [
    # Seeded constructions and injected streams are the house idiom.
    "import random\n\ndef make_rng(seed):\n    return random.Random(seed)\n",
    "def draw(rng):\n    return rng.random()\n",
    "def tick(sim):\n    return sim.now\n",
    # Attribute access without a call (type annotations etc.).
    "import random\n\ndef ann(r: random.Random) -> None:\n    pass\n",
]


@pytest.mark.parametrize("source", DET001_NEGATIVE)
def test_det001_silent(tmp_path, source):
    assert codes(lint_snippet(tmp_path, source)) == []


def test_det001_exempts_bench_modules(tmp_path):
    bench = tmp_path / "repro" / "bench.py"
    bench.parent.mkdir()
    bench.write_text("import time\n\ndef score():\n    return time.time()\n")
    assert codes(run_lint([str(bench)])) == []


def test_det001_reports_position(tmp_path):
    result = lint_snippet(
        tmp_path, "import time\n\ndef tick():\n    return time.time()\n"
    )
    (finding,) = result.findings
    assert finding.line == 4
    assert "time.time" in finding.message


# -- DET002: unordered iteration into order-sensitive sinks ---------------


DET002_POSITIVE = [
    # set literal scheduling events
    """
    def arm(sim, hosts):
        for host in {hosts[0], hosts[1]}:
            sim.schedule(1.0, host.poll)
    """,
    # set() call feeding a trace record
    """
    def note(trace, names):
        for name in set(names):
            trace.record(0.0, None, name)
    """,
    # locally-bound set variable
    """
    def arm(sim, a, b):
        pending = {a, b}
        for host in pending:
            sim.schedule_at(2.0, host.poll)
    """,
    # dict view without sorted()
    """
    def flush(sim, timers):
        for name in timers.keys():
            sim.schedule(0.5, name)
    """,
    # .values() feeding merge_from
    """
    def fold(target, shards):
        for shard in shards.values():
            target.merge_from(shard)
    """,
    # comprehension over a set with a sink in the element
    """
    def arm(sim, hosts):
        return [sim.schedule(1.0, h.poll) for h in set(hosts)]
    """,
    # list() wrapper preserves the underlying (unordered) order
    """
    def flush(sim, timers):
        for name in list(timers.items()):
            sim.schedule(0.5, name)
    """,
]


@pytest.mark.parametrize("source", DET002_POSITIVE)
def test_det002_fires(tmp_path, source):
    assert codes(lint_snippet(tmp_path, source)) == ["DET002"]


DET002_NEGATIVE = [
    # sorted() removes the hazard
    """
    def arm(sim, hosts):
        for host in sorted({hosts[0], hosts[1]}):
            sim.schedule(1.0, host.poll)
    """,
    """
    def flush(sim, timers):
        for name, timer in sorted(timers.items()):
            sim.schedule(0.5, timer)
    """,
    # order-insensitive sinks (counter increments) are fine
    """
    def tally(counter, names):
        for name in set(names):
            counter.inc()
    """,
    # iteration over a list is ordered
    """
    def arm(sim, hosts):
        for host in hosts:
            sim.schedule(1.0, host.poll)
    """,
    # set iteration without any sink
    """
    def total(sizes):
        acc = 0
        for size in set(sizes):
            acc += size
        return acc
    """,
]


@pytest.mark.parametrize("source", DET002_NEGATIVE)
def test_det002_silent(tmp_path, source):
    assert codes(lint_snippet(tmp_path, source)) == []


def test_det002_inline_ignore(tmp_path):
    source = """
    def fold(target, shards):
        for shard in shards.values():  # lint: ignore[DET002]
            target.merge_from(shard)
    """
    result = lint_snippet(tmp_path, source)
    assert codes(result) == []
    assert result.suppressed_inline == 1


# -- DET003: identity ordering --------------------------------------------


DET003_POSITIVE = [
    "def order(xs):\n    return sorted(xs, key=id)\n",
    "def order(xs):\n    return sorted(xs, key=lambda x: id(x))\n",
    "def order(xs):\n    xs.sort(key=lambda x: (x.time, id(x)))\n",
    "def pick(xs):\n    return min(xs, key=lambda x: id(x))\n",
    "def tie(a, b):\n    return id(a) < id(b)\n",
    "def order(xs, pivot):\n"
    "    return sorted(xs, key=lambda x: (0 if x is pivot else 1))\n",
]


@pytest.mark.parametrize("source", DET003_POSITIVE)
def test_det003_fires(tmp_path, source):
    assert codes(lint_snippet(tmp_path, source)) == ["DET003"]


DET003_NEGATIVE = [
    # stable-field ordering: the house (time, seq) pattern
    "def order(xs):\n    return sorted(xs, key=lambda x: (x.time, x.seq))\n",
    # identity as a *predicate* is legitimate
    "def same(a, b):\n    return a is b\n",
    # equality on id() (cheap identity test) is not an ordering
    "def same(a, b):\n    return id(a) == id(b)\n",
]


@pytest.mark.parametrize("source", DET003_NEGATIVE)
def test_det003_silent(tmp_path, source):
    assert codes(lint_snippet(tmp_path, source)) == []


# -- SIM001: kernel invariants --------------------------------------------


SIM001_POSITIVE = [
    "def warp(sim):\n    sim._now = 99.0\n",
    "def warp(sim):\n    sim._queue = []\n",
    "def warp(sim):\n    sim._events_processed += 7\n",
    "def warp(cluster):\n    cluster.sim._now = 0.0\n",
    "import time\n\ndef handler():\n    time.sleep(0.1)\n",
    "from time import sleep\n\ndef handler():\n    sleep(1)\n",
]


@pytest.mark.parametrize("source", SIM001_POSITIVE)
def test_sim001_fires(tmp_path, source):
    assert codes(lint_snippet(tmp_path, source)) == ["SIM001"]


SIM001_NEGATIVE = [
    # a class managing its own flag of the same name
    "class Gen:\n    def start(self):\n        self._running = True\n",
    # reading kernel fields is fine
    "def probe(sim):\n    return sim._now\n",
    # scheduling through the API is the sanctioned path
    "def arm(sim, cb):\n    sim.schedule(1.0, cb)\n",
]


@pytest.mark.parametrize("source", SIM001_NEGATIVE)
def test_sim001_silent(tmp_path, source):
    assert codes(lint_snippet(tmp_path, source)) == []


def test_sim001_allows_the_kernel_itself(tmp_path):
    kernel = tmp_path / "repro" / "sim" / "kernel.py"
    kernel.parent.mkdir(parents=True)
    kernel.write_text(
        "class Simulator:\n"
        "    def run(self, event):\n"
        "        self._now = event.time\n"
    )
    assert codes(run_lint([str(kernel)])) == []


SIM001_FLUID_POSITIVE = [
    # poking the histogram desynchronizes the cached flows total
    "def cheat(dist):\n    dist._bin_mass = [1.0]\n",
    "def cheat(dist):\n    dist._lo_bin = 0\n",
    "def cheat(pop):\n    pop.distribution._hi_bin = 5\n",
]


@pytest.mark.parametrize("source", SIM001_FLUID_POSITIVE)
def test_sim001_protects_fluid_state(tmp_path, source):
    assert codes(lint_snippet(tmp_path, source)) == ["SIM001"]


def test_sim001_fluid_fields_allowed_in_owning_module(tmp_path):
    fluid = tmp_path / "repro" / "sim" / "fluid.py"
    fluid.parent.mkdir(parents=True)
    fluid.write_text(
        "class CwndDistribution:\n"
        "    def rebuild(self, dist, new):\n"
        "        dist._bin_mass = new\n"
        "        dist._lo_bin, dist._hi_bin = 0, -1\n"
    )
    assert codes(run_lint([str(fluid)])) == []


def test_sim001_fluid_reads_are_fine(tmp_path):
    source = "def spread(dist):\n    return dist._hi_bin - dist._lo_bin\n"
    assert codes(lint_snippet(tmp_path, source)) == []


# -- SLOT001: undeclared slot attributes ----------------------------------


SLOT001_POSITIVE = [
    """
    class Packet:
        __slots__ = ("src", "dst")

        def __init__(self, src, dst):
            self.src = src
            self.dst = dst
            self.size = 0
    """,
    # inherited slots resolved through an in-file chain
    """
    class Base:
        __slots__ = ("a",)

    class Child(Base):
        __slots__ = ("b",)

        def touch(self):
            self.c = 1
    """,
    # setattr with a literal name
    """
    class Packet:
        __slots__ = ("src",)

        def patch(self):
            setattr(self, "oops", 1)
    """,
]


@pytest.mark.parametrize("source", SLOT001_POSITIVE)
def test_slot001_fires(tmp_path, source):
    result = lint_snippet(tmp_path, source)
    assert codes(result) == ["SLOT001"]


SLOT001_NEGATIVE = [
    # every assignment declared
    """
    class Packet:
        __slots__ = ("src", "dst")

        def __init__(self, src, dst):
            self.src = src
            self.dst = dst
    """,
    # property setter is a legitimate target
    """
    class Sock:
        __slots__ = ("_cwnd",)

        @property
        def cwnd(self):
            return self._cwnd

        @cwnd.setter
        def cwnd(self, value):
            self._cwnd = value

        def reset(self):
            self.cwnd = 10
    """,
    # unresolvable base: stay conservative, no finding
    """
    from elsewhere import Base

    class Child(Base):
        __slots__ = ("b",)

        def touch(self):
            self.mystery = 1
    """,
    # no __slots__ anywhere: instances have __dict__
    """
    class Plain:
        def touch(self):
            self.anything = 1
    """,
    # dataclass(slots=True) synthesizes slots the AST cannot see
    """
    from dataclasses import dataclass

    @dataclass(slots=True)
    class Row:
        a: int

        def touch(self):
            self.b = 1
    """,
]


@pytest.mark.parametrize("source", SLOT001_NEGATIVE)
def test_slot001_silent(tmp_path, source):
    assert codes(lint_snippet(tmp_path, source)) == []


# -- OBS001: taxonomy drift -----------------------------------------------


DOC_TEMPLATE = """\
# Architecture

Metric reference:

| Metric | Kind | Meaning |
| --- | --- | --- |
| `good_metric` | counter | documented |
{extra_metric}
Trace event reference:

| Event | Meaning |
| --- | --- |
| `good_event` | documented |

Span source reference:

| Source | Span |
| --- | --- |
| `agent` | poll tick |
"""


def make_project(tmp_path, source: str, extra_metric: str = ""):
    (tmp_path / "pyproject.toml").write_text("[project]\nname = 'x'\n")
    docs = tmp_path / "docs"
    docs.mkdir()
    (docs / "ARCHITECTURE.md").write_text(
        DOC_TEMPLATE.format(extra_metric=extra_metric)
    )
    module = tmp_path / "emitters.py"
    module.write_text(textwrap.dedent(source))
    return module


def test_obs001_flags_undocumented_metric(tmp_path):
    module = make_project(
        tmp_path,
        """
        def wire(metrics):
            metrics.counter("good_metric")
            metrics.gauge("rogue_metric")
        """,
    )
    result = run_lint([str(module)], select=["OBS001"])
    assert codes(result) == ["OBS001"]
    (finding,) = result.findings
    assert "rogue_metric" in finding.message
    assert finding.path.endswith("emitters.py")


def test_obs001_flags_undocumented_trace_event_and_span_source(tmp_path):
    module = make_project(
        tmp_path,
        """
        import enum

        class EventType(enum.Enum):
            GOOD = "good_event"
            ROGUE = "rogue_event"

        def emit(spans, now):
            spans.begin(now, "tick", "agent", "host")
            spans.begin(now, "tick", "rogue_source", "host")
        """,
    )
    result = run_lint([str(module)], select=["OBS001"])
    messages = " ".join(f.message for f in result.findings)
    assert codes(result) == ["OBS001", "OBS001"]
    assert "rogue_event" in messages
    assert "rogue_source" in messages


def test_obs001_documented_names_are_silent(tmp_path):
    module = make_project(
        tmp_path,
        """
        def wire(metrics):
            metrics.counter("good_metric")
        """,
    )
    assert codes(run_lint([str(module)], select=["OBS001"])) == []


def test_obs001_doc_side_requires_full_tree_scan(tmp_path):
    # A partial scan must not claim documented names went silent.
    module = make_project(
        tmp_path,
        "def wire(metrics):\n    metrics.counter('good_metric')\n",
        extra_metric="| `never_emitted` | counter | stale row |\n",
    )
    assert codes(run_lint([str(module)], select=["OBS001"])) == []


def test_obs001_doc_side_fires_on_full_tree_scan(tmp_path):
    make_project(
        tmp_path,
        """
        import enum

        class EventType(enum.Enum):
            GOOD = "good_event"

        def wire(metrics, spans, now):
            metrics.counter("good_metric")
            spans.begin(now, "tick", "agent", "host")
        """,
        extra_metric="| `never_emitted` | counter | stale row |\n",
    )
    # The sentinel file marks the scan as whole-tree.
    sentinel = tmp_path / "repro" / "obs" / "metrics.py"
    sentinel.parent.mkdir(parents=True)
    sentinel.write_text("def noop():\n    pass\n")
    result = run_lint([str(tmp_path)], select=["OBS001"])
    assert codes(result) == ["OBS001"]
    (finding,) = result.findings
    assert "never_emitted" in finding.message
    assert finding.path.endswith("ARCHITECTURE.md")


def test_obs001_without_project_root_is_silent(tmp_path):
    module = tmp_path / "emitters.py"
    module.write_text("def wire(m):\n    m.counter('whatever')\n")
    assert codes(run_lint([str(module)], select=["OBS001"])) == []


# -- coverage pins: repro.policy is linted like the core ------------------


def test_no_rule_exempts_repro_policy():
    """``repro.policy`` must stay inside every rule's coverage.

    The zoo makes window decisions and emits metrics, so it is held to
    the same determinism/observability bar as ``repro.core``.  FLT001
    is the one deliberate exception: it is *inclusion*-scoped to the
    derivation packages (``repro.obs``/``repro.analysis``) whose sums
    feed byte-compared artifacts, so it is pinned separately.
    """
    from repro.analysis.lint import ALL_RULES

    for rule_cls in ALL_RULES:
        rule = rule_cls()
        if rule.code == "FLT001":
            assert rule.applies_to("repro.obs.metrics")
            assert rule.applies_to("repro.analysis.cdf")
            assert not rule.applies_to("repro.policy")
        else:
            assert rule.applies_to("repro.policy")
            assert rule.applies_to("repro.policy.zoo")


def test_obs001_and_det002_fire_inside_repro_policy(tmp_path):
    (tmp_path / "pyproject.toml").write_text("[project]\nname = 'x'\n")
    docs = tmp_path / "docs"
    docs.mkdir()
    (docs / "ARCHITECTURE.md").write_text(DOC_TEMPLATE.format(extra_metric=""))
    module = tmp_path / "repro" / "policy" / "custom.py"
    module.parent.mkdir(parents=True)
    module.write_text(
        textwrap.dedent(
            """
            def wire(metrics, sim, hosts):
                metrics.counter("rogue_policy_metric")
                for host in set(hosts):
                    sim.schedule(1.0, host.poll)
            """
        )
    )
    result = run_lint([str(module)], select=["OBS001", "DET002"])
    assert sorted(codes(result)) == ["DET002", "OBS001"]
