"""Unit and property tests for CDFs, percentile gains and renderers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import (
    EmpiricalCdf,
    format_cdf_rows,
    format_table,
    fraction_below,
    percentile_gain_profile,
    summarize,
)


class TestEmpiricalCdf:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalCdf([])

    def test_cdf_values(self):
        cdf = EmpiricalCdf([1.0, 2.0, 3.0, 4.0])
        assert cdf.cdf(0.5) == 0.0
        assert cdf.cdf(2.0) == 0.5
        assert cdf.cdf(4.0) == 1.0

    def test_quantile_endpoints(self):
        cdf = EmpiricalCdf([5.0, 1.0, 3.0])
        assert cdf.quantile(0.0) == 1.0
        assert cdf.quantile(1.0) == 5.0

    def test_median_interpolates(self):
        assert EmpiricalCdf([0.0, 10.0]).median == pytest.approx(5.0)

    def test_summary_statistics(self):
        cdf = EmpiricalCdf([1.0, 2.0, 3.0])
        assert cdf.min == 1.0
        assert cdf.max == 3.0
        assert cdf.mean == pytest.approx(2.0)
        assert len(cdf) == 3

    def test_quantile_bounds_rejected(self):
        cdf = EmpiricalCdf([1.0])
        with pytest.raises(ValueError):
            cdf.quantile(-0.1)
        with pytest.raises(ValueError):
            cdf.quantile(1.1)

    def test_percentiles(self):
        cdf = EmpiricalCdf(range(101))
        assert cdf.percentiles([50]) == [pytest.approx(50.0)]

    def test_series_for_plotting(self):
        series = EmpiricalCdf([1.0, 2.0, 3.0]).series(points=3)
        assert series[0] == (1.0, 0.0)
        assert series[-1] == (3.0, 1.0)

    def test_series_needs_two_points(self):
        with pytest.raises(ValueError):
            EmpiricalCdf([1.0]).series(points=1)


class TestPercentileGain:
    def test_uniform_speedup(self):
        baseline = [float(i) for i in range(1, 101)]
        treatment = [v / 2.0 for v in baseline]
        profile = percentile_gain_profile(baseline, treatment)
        assert all(g.gain == pytest.approx(0.5, abs=0.01) for g in profile)

    def test_no_change_gives_zero_gain(self):
        values = [float(i) for i in range(1, 101)]
        profile = percentile_gain_profile(values, list(values))
        assert all(abs(g.gain) < 0.01 for g in profile)

    def test_tail_only_improvement(self):
        """Gains concentrated above the median (the Figure 15 shape)."""
        baseline = [1.0] * 50 + [4.0] * 50
        treatment = [1.0] * 50 + [2.0] * 50
        profile = percentile_gain_profile(baseline, treatment)
        low = [g for g in profile if g.percentile <= 45]
        high = [g for g in profile if g.percentile >= 60]
        assert all(abs(g.gain) < 0.05 for g in low)
        assert all(g.gain > 0.3 for g in high)

    def test_percentile_steps(self):
        profile = percentile_gain_profile([1.0, 2.0], [1.0, 2.0], step=10.0)
        assert [g.percentile for g in profile] == [
            5.0, 15.0, 25.0, 35.0, 45.0, 55.0, 65.0, 75.0, 85.0, 95.0,
        ]

    def test_invalid_step_rejected(self):
        with pytest.raises(ValueError):
            percentile_gain_profile([1.0], [1.0], step=0.0)

    def test_zero_baseline_handled(self):
        from repro.analysis.stats import PercentileGain

        gain = PercentileGain(percentile=50, baseline=0.0, treatment=1.0)
        assert gain.gain == 0.0


class TestHelpers:
    def test_fraction_below(self):
        assert fraction_below([1, 2, 3, 4], 2) == 0.5

    def test_fraction_below_empty_rejected(self):
        with pytest.raises(ValueError):
            fraction_below([], 1)

    def test_summarize_keys(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary["n"] == 3
        assert summary["median"] == 2.0
        assert set(summary) >= {"min", "max", "mean", "p25", "p75", "p90"}


class TestRenderers:
    def test_format_table_aligns(self):
        text = format_table(("a", "bbb"), [("x", "1"), ("yy", "22")], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbb" in lines[1]
        assert len(lines) == 5

    def test_format_table_validates_row_width(self):
        with pytest.raises(ValueError):
            format_table(("a", "b"), [("only-one",)])

    def test_format_cdf_rows(self):
        text = format_cdf_rows({"s": EmpiricalCdf([1.0, 2.0, 3.0])}, levels=(50,))
        assert "p50" in text
        assert "s" in text


@given(samples=st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200))
def test_cdf_quantile_monotone(samples):
    cdf = EmpiricalCdf(samples)
    previous = cdf.quantile(0.0)
    for i in range(1, 11):
        current = cdf.quantile(i / 10.0)
        assert current >= previous - 1e-9
        previous = current


@given(samples=st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200))
def test_cdf_bounds(samples):
    cdf = EmpiricalCdf(samples)
    assert cdf.min <= cdf.median <= cdf.max
    assert cdf.cdf(cdf.max) == 1.0
    assert cdf.cdf(cdf.min - 1.0) == 0.0
