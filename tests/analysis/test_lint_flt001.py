"""FLT001 — float identity in derivation paths.

A bare ``sum()`` (or running ``+=``) over floats differs in the last
ulp depending on how samples were grouped across workers; ``math.fsum``
is the correctly-rounded true sum, so merged and serial derivations
stay byte-identical.  The rule fires only on provable float evidence —
integer tallies must stay silent.
"""

from __future__ import annotations

import textwrap

from repro.analysis.lint import run_lint
from repro.analysis.lint.flt001 import Flt001FloatIdentity


def lint(tmp_path, source):
    (tmp_path / "derive.py").write_text(textwrap.dedent(source))
    return run_lint([str(tmp_path)], select=["FLT001"])


# -- firing ---------------------------------------------------------------


def test_sum_over_float_comprehension_local(tmp_path):
    result = lint(
        tmp_path,
        """
        def mean(xs):
            values = [float(x) for x in xs]
            return sum(values) / len(values)
        """,
    )
    (finding,) = result.findings
    assert finding.code == "FLT001"
    assert "math.fsum" in finding.message


def test_sum_over_float_genexp(tmp_path):
    result = lint(
        tmp_path,
        """
        def total(xs):
            return sum(float(x) for x in xs)
        """,
    )
    assert [f.code for f in result.findings] == ["FLT001"]


def test_float_accumulator_in_loop(tmp_path):
    result = lint(
        tmp_path,
        """
        def total(xs):
            acc = 0.0
            for x in xs:
                acc += float(x)
            return acc
        """,
    )
    (finding,) = result.findings
    assert "grouping-sensitive" in finding.message


def test_float_attribute_accumulator(tmp_path):
    result = lint(
        tmp_path,
        """
        class Histogram:
            def __init__(self):
                self._sum: float = 0.0

            def observe(self, value):
                self._sum += float(value)
        """,
    )
    assert [f.code for f in result.findings] == ["FLT001"]


# -- non-firing -----------------------------------------------------------


def test_integer_tallies_are_silent(tmp_path):
    result = lint(
        tmp_path,
        """
        def count(xs):
            n = sum(1 for x in xs)
            total = 0
            for x in xs:
                total += 1
            return n + total
        """,
    )
    assert result.findings == []


def test_fsum_is_the_fix(tmp_path):
    result = lint(
        tmp_path,
        """
        import math


        def mean(xs):
            values = [float(x) for x in xs]
            return math.fsum(values) / len(values)
        """,
    )
    assert result.findings == []


def test_unknown_element_type_is_silent(tmp_path):
    """No float evidence, no finding — the rule is optimistic."""
    result = lint(
        tmp_path,
        """
        def total(xs):
            return sum(xs)
        """,
    )
    assert result.findings == []


def test_dense_id_increment_is_silent(tmp_path):
    result = lint(
        tmp_path,
        """
        class Log:
            def __init__(self):
                self._next_id = 0

            def record(self):
                self._next_id += 1
        """,
    )
    assert result.findings == []


# -- scope ----------------------------------------------------------------


def test_flt001_scope_is_derivation_paths():
    rule = Flt001FloatIdentity()
    assert rule.applies_to(None)
    assert rule.applies_to("repro.obs.metrics")
    assert rule.applies_to("repro.analysis.cdf")
    assert not rule.applies_to("repro.analysis.lint.engine")
    assert not rule.applies_to("repro.policy.zoo")
    assert not rule.applies_to("repro.core.agent")
