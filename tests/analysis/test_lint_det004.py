"""DET004 — interprocedural nondeterminism taint.

The regression these tests pin: a helper that returns ``list(set(...))``
or a wall-clock deadline looks harmless at every call site, so the
per-file DET rules stay silent — only the whole-program pass sees the
taint cross the module boundary into an order-sensitive sink.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis.lint import run_lint

HELPERS = """
    import time


    def poll_targets(hosts):
        return list(set(hosts))


    def deadline():
        return time.time() + 5.0


    def safe_targets(hosts):
        return sorted(set(hosts))
    """

CALLER = """
    from helpers import deadline, poll_targets, safe_targets


    def run(sim, hosts):
        for host in poll_targets(hosts):
            sim.schedule(0.0, host)


    def run_at(sim, task):
        sim.schedule_at(deadline(), task)


    def run_safe(sim, hosts):
        for host in safe_targets(hosts):
            sim.schedule(0.0, host)
    """


@pytest.fixture
def tree(tmp_path):
    (tmp_path / "helpers.py").write_text(textwrap.dedent(HELPERS))
    (tmp_path / "caller.py").write_text(textwrap.dedent(CALLER))
    return tmp_path


def test_det004_catches_cross_module_taint(tree):
    result = run_lint([str(tree)], select=["DET004"])
    rendered = [f.render() for f in result.findings]
    assert len(result.findings) == 2, rendered
    order, value = sorted(result.findings, key=lambda f: f.line)
    assert "caller.py" in order.path
    assert "hash order" in order.message
    assert "poll_targets" in order.message
    assert "time.time()" in value.message
    assert "deadline" in value.message


def test_per_file_rules_miss_what_det004_catches(tree):
    """The seed analyzer's blind spot: DET001/002/003 see nothing here."""
    result = run_lint([str(tree)], select=["DET002"])
    assert result.findings == []
    result = run_lint([str(tree)], ignore=["DET004"])
    assert all(f.code != "DET004" for f in result.findings)
    # helpers.py itself carries per-file findings or not — but the call
    # sites in caller.py are invisible without the index.
    assert not any("caller.py" in f.path for f in result.findings)


def test_sorted_neutralizes_the_chain(tree):
    result = run_lint([str(tree)], select=["DET004"])
    # run_safe's loop (safe_targets returns sorted(...)) must stay silent.
    assert all(f.line < 15 for f in result.findings), [
        f.render() for f in result.findings
    ]


def test_det004_leaves_direct_taint_to_per_file_rules(tmp_path):
    """Same-function taint is DET001/002's beat; DET004 must not double-report."""
    source = """
        def run(sim, hosts):
            for host in set(hosts):
                sim.schedule(0.0, host)
        """
    (tmp_path / "direct.py").write_text(textwrap.dedent(source))
    result = run_lint([str(tmp_path)], select=["DET004"])
    assert result.findings == []


def test_det004_taint_through_intermediate_module(tmp_path):
    """Two hops: source module -> wrapper module -> sink module."""
    (tmp_path / "clock.py").write_text(
        textwrap.dedent(
            """
            import time


            def now():
                return time.time()
            """
        )
    )
    (tmp_path / "wrapper.py").write_text(
        textwrap.dedent(
            """
            from clock import now


            def stamp():
                return now()
            """
        )
    )
    (tmp_path / "sink.py").write_text(
        textwrap.dedent(
            """
            from wrapper import stamp


            def go(sim, task):
                sim.schedule_at(stamp(), task)
            """
        )
    )
    result = run_lint([str(tmp_path)], select=["DET004"])
    (finding,) = result.findings
    assert "sink.py" in finding.path
    assert "time.time()" in finding.message


def test_det004_suppressible_inline(tree):
    caller = tree / "caller.py"
    lines = caller.read_text().splitlines()
    # Findings anchor at the tainted loop header and at the sink call.
    patched = [
        line + "  # lint: ignore[DET004]"
        if "in poll_targets" in line or "sim.schedule_at" in line
        else line
        for line in lines
    ]
    caller.write_text("\n".join(patched) + "\n")
    result = run_lint([str(tree)], select=["DET004"])
    assert result.findings == []
    assert result.suppressed_inline == 2
