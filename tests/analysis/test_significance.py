"""Tests for the KS-based distribution comparison."""

import random

import pytest

from repro.analysis import ks_compare, median_shift


class TestKsCompare:
    def test_identical_samples_consistent_with_no_change(self):
        values = [float(i) for i in range(200)]
        result = ks_compare(values, list(values))
        assert result.p_value == pytest.approx(1.0)
        assert result.consistent_with_no_change()
        assert not result.distributions_differ()

    def test_shifted_samples_differ(self):
        rng = random.Random(1)
        control = [rng.gauss(1.0, 0.1) for _ in range(300)]
        treatment = [rng.gauss(0.5, 0.1) for _ in range(300)]
        result = ks_compare(control, treatment)
        assert result.distributions_differ()
        assert result.statistic > 0.5

    def test_same_distribution_different_draws(self):
        rng = random.Random(2)
        control = [rng.gauss(1.0, 0.2) for _ in range(300)]
        treatment = [rng.gauss(1.0, 0.2) for _ in range(300)]
        result = ks_compare(control, treatment)
        assert result.consistent_with_no_change(alpha=0.01)

    def test_sample_counts_recorded(self):
        result = ks_compare([1.0, 2.0], [1.0, 2.0, 3.0])
        assert result.n_control == 2
        assert result.n_treatment == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ks_compare([], [1.0])
        with pytest.raises(ValueError):
            ks_compare([1.0], [])

    def test_summary_renders(self):
        summary = ks_compare([1.0, 2.0], [1.0, 2.0]).summary()
        assert "KS D=" in summary and "p=" in summary


class TestMedianShift:
    def test_improvement_positive(self):
        assert median_shift([2.0, 2.0, 2.0], [1.0, 1.0, 1.0]) == pytest.approx(0.5)

    def test_no_change_zero(self):
        assert median_shift([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 0.0

    def test_regression_negative(self):
        assert median_shift([1.0], [2.0]) == pytest.approx(-1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            median_shift([], [1.0])
