"""Tests for CSV export helpers."""

import csv
import io

import pytest

from repro.analysis import EmpiricalCdf
from repro.analysis.export import cdf_to_csv, cdfs_to_csv, rows_to_csv, write_csv


def parse(text):
    return list(csv.reader(io.StringIO(text)))


class TestRowsToCsv:
    def test_header_and_rows(self):
        text = rows_to_csv(("a", "b"), [(1, 2), (3, 4)])
        parsed = parse(text)
        assert parsed[0] == ["a", "b"]
        assert parsed[1] == ["1", "2"]
        assert len(parsed) == 3

    def test_row_width_validated(self):
        with pytest.raises(ValueError):
            rows_to_csv(("a", "b"), [(1,)])

    def test_quoting_of_commas(self):
        text = rows_to_csv(("x",), [("hello, world",)])
        assert parse(text)[1] == ["hello, world"]


class TestCdfExport:
    def test_cdf_to_csv_endpoints(self):
        cdf = EmpiricalCdf([1.0, 2.0, 3.0])
        parsed = parse(cdf_to_csv(cdf, points=3))
        assert parsed[0] == ["value", "cumulative_fraction"]
        assert float(parsed[1][0]) == 1.0
        assert float(parsed[-1][0]) == 3.0
        assert float(parsed[-1][1]) == 1.0

    def test_cdfs_to_csv_long_format(self):
        text = cdfs_to_csv(
            {"a": EmpiricalCdf([1.0, 2.0]), "b": EmpiricalCdf([5.0, 6.0])},
            points=2,
        )
        parsed = parse(text)
        assert parsed[0] == ["series", "value", "cumulative_fraction"]
        series = {row[0] for row in parsed[1:]}
        assert series == {"a", "b"}
        assert len(parsed) == 1 + 2 * 2

    def test_empty_mapping_rejected(self):
        with pytest.raises(ValueError):
            cdfs_to_csv({})

    def test_write_csv(self, tmp_path):
        path = tmp_path / "out.csv"
        write_csv(str(path), rows_to_csv(("a",), [(1,)]))
        assert path.read_text().startswith("a\n")


class TestObsExports:
    def test_trace_to_csv_flattens_details(self):
        from repro.analysis.export import trace_to_csv
        from repro.obs import EventType, TraceLog

        log = TraceLog()
        log.record(1.5, EventType.ROUTE_INSTALLED, "srv", window=40, ttl=600)
        parsed = parse(trace_to_csv(log))
        assert parsed[0] == ["time", "type", "source", "details"]
        assert parsed[1] == ["1.5", "route_installed", "srv", "window=40 ttl=600"]

    def test_trace_to_json_carries_drop_counters(self):
        import json

        from repro.analysis.export import trace_to_json
        from repro.obs import EventType, TraceLog

        log = TraceLog(capacity=1)
        log.record(0.0, EventType.CONN_OPENED, "a")
        log.record(1.0, EventType.CONN_OPENED, "a")
        payload = json.loads(trace_to_json(log))
        assert payload["recorded"] == 2
        assert payload["retained"] == 1
        assert payload["dropped"] == 1
        assert len(payload["events"]) == 1

    def test_flows_jsonl_and_json(self):
        import json

        from repro.analysis.export import flows_to_json, flows_to_jsonl
        from repro.obs import FlowLog

        log = FlowLog()
        assert flows_to_jsonl(log) == ""
        for index in range(2):
            log.begin(
                host="srv",
                local="10.0.0.1",
                local_port=8080,
                remote="10.1.0.1",
                remote_port=32768 + index,
                opened_at=float(index),
                is_client=False,
                initial_cwnd=10,
                cwnd_source="default",
            )
        lines = flows_to_jsonl(log).splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["flow_id"] == 0
        payload = json.loads(flows_to_json(log))
        assert payload["recorded"] == 2
        assert payload["dropped"] == 0
        assert [f["flow_id"] for f in payload["flows"]] == [0, 1]

    def test_flows_json_time_window(self):
        import json

        from repro.analysis.export import flows_to_json
        from repro.obs import FlowLog

        log = FlowLog()
        early = log.begin(
            host="srv",
            local="10.0.0.1",
            local_port=8080,
            remote="10.1.0.1",
            remote_port=32768,
            opened_at=1.0,
            is_client=False,
            initial_cwnd=10,
            cwnd_source="default",
        )
        early.closed_at = 2.0
        log.begin(
            host="srv",
            local="10.0.0.1",
            local_port=8080,
            remote="10.1.0.1",
            remote_port=32769,
            opened_at=10.0,
            is_client=False,
            initial_cwnd=10,
            cwnd_source="default",
        )
        payload = json.loads(flows_to_json(log, since=5.0))
        assert payload["recorded"] == 2
        assert payload["selected"] == 1
        assert [f["flow_id"] for f in payload["flows"]] == [1]

    def test_timeline_to_csv(self):
        from repro.analysis.export import timeline_to_csv
        from repro.obs import Timeline

        timeline = Timeline()
        timeline.record(2.0, "srv", "installed_routes", 3)
        parsed = parse(timeline_to_csv(timeline))
        assert parsed[0] == ["time", "source", "series", "value"]
        assert parsed[1] == ["2", "srv", "installed_routes", "3"]


class TestPrometheusExposition:
    def _registry(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("tcp_connections_opened").inc(3)
        registry.counter("riptide_clamp_hits", bound="c_max").inc()
        registry.counter("riptide_clamp_hits", bound="c_min").inc(2)
        registry.gauge("faults_active").set(1.5)
        histogram = registry.histogram("probe_completion_time", bucket="short")
        for value in (0.1, 0.2, 0.3, 0.4):
            histogram.observe(value)
        return registry

    def test_families_typed_once_and_sorted(self):
        from repro.analysis.export import metrics_to_prometheus

        text = metrics_to_prometheus(self._registry())
        lines = text.splitlines()
        assert text.endswith("\n")
        assert lines.count("# TYPE riptide_clamp_hits counter") == 1
        assert "# TYPE faults_active gauge" in lines
        assert "# TYPE probe_completion_time summary" in lines
        # Series sorted within the family: c_max before c_min.
        c_max = lines.index('riptide_clamp_hits{bound="c_max"} 1')
        c_min = lines.index('riptide_clamp_hits{bound="c_min"} 2')
        assert c_max < c_min

    def test_histogram_exports_as_summary(self):
        from repro.analysis.export import metrics_to_prometheus

        text = metrics_to_prometheus(self._registry())
        assert 'probe_completion_time{bucket="short",quantile="0.5"} 0.3' in text
        assert 'probe_completion_time{bucket="short",quantile="0.9"} 0.4' in text
        assert 'probe_completion_time_sum{bucket="short"} 1' in text
        assert 'probe_completion_time_count{bucket="short"} 4' in text

    def test_label_values_escaped(self):
        from repro.analysis.export import metrics_to_prometheus
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("odd_labels", source='a"b\\c\nd').inc()
        text = metrics_to_prometheus(registry)
        assert 'odd_labels{source="a\\"b\\\\c\\nd"} 1' in text

    def test_empty_registry_is_empty_output(self):
        from repro.analysis.export import metrics_to_prometheus
        from repro.obs.metrics import MetricsRegistry

        assert metrics_to_prometheus(MetricsRegistry()) == ""


class TestTransferTrace:
    def test_records_transfers(self):
        from repro.cdn.trace import TransferTrace
        from repro.cdn.transfer import TransferClient, TransferServer
        from repro.testing import TwoHostTestbed

        bed = TwoHostTestbed(rtt=0.050)
        TransferServer(bed.server)
        client = TransferClient(bed.client)
        trace = TransferTrace()
        trace.attach(client, source_label="test-client")
        client.fetch(bed.server.address, 10_000)
        client.fetch(bed.server.address, 20_000)
        bed.sim.run(until=5.0)
        assert len(trace.completed()) == 2
        assert trace.completion_times(size_bytes=10_000)
        record = trace.records[0]
        assert record.source == "test-client"
        assert record.initial_cwnd == 10

    def test_records_failures(self):
        from repro.cdn.trace import TransferTrace
        from repro.cdn.transfer import TransferClient, TransferServer
        from repro.testing import TwoHostTestbed

        bed = TwoHostTestbed(rtt=0.050)
        TransferServer(bed.server)
        client = TransferClient(bed.client)
        trace = TransferTrace()
        trace.attach(client)
        client.fetch(bed.server.address, 500_000)
        bed.sim.run(until=0.3)
        for sock in bed.client.sockets():
            sock.abort()
        bed.sim.run(until=2.0)
        assert len(trace.failed()) == 1
        assert trace.failed()[0].failed_reason

    def test_csv_round_trip(self):
        from repro.cdn.trace import TransferTrace
        from repro.cdn.transfer import TransferClient, TransferServer
        from repro.testing import TwoHostTestbed

        bed = TwoHostTestbed(rtt=0.050)
        TransferServer(bed.server)
        client = TransferClient(bed.client)
        trace = TransferTrace()
        trace.attach(client)
        client.fetch(bed.server.address, 10_000)
        bed.sim.run(until=5.0)
        parsed = parse(trace.to_csv())
        assert parsed[0] == list(TransferTrace.CSV_HEADERS)
        assert len(parsed) == 2
        assert parsed[1][3] == "10000"
