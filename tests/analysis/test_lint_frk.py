"""FRK001/FRK002 — fork/merge safety of Instrumentation stores.

Fixtures model the real contract: ``repro.parallel`` pickles each
worker's Instrumentation back to the parent and folds stores in with
``merge_from``, renumbering dense ids so serial == parallel byte-wise.
"""

from __future__ import annotations

import textwrap

from repro.analysis.lint import run_lint


def lint(tmp_path, source, select):
    (tmp_path / "obs.py").write_text(textwrap.dedent(source))
    return run_lint([str(tmp_path)], select=select)


GOOD = """
    class FlowLog:
        def __init__(self):
            self._records = []
            self._next_id = 0

        def record(self, flow):
            self._next_id += 1
            self._records.append((self._next_id, flow))

        def merge_from(self, other):
            offset = self._next_id
            self._records.extend(other._records)
            self._next_id = offset + other._next_id


    class Instrumentation:
        def __init__(self):
            self.flows = FlowLog()
    """


def test_well_formed_store_is_silent(tmp_path):
    result = lint(tmp_path, GOOD, ["FRK001", "FRK002"])
    assert result.findings == []


def test_frk001_lock_in_store(tmp_path):
    source = """
        import threading


        class TraceLog:
            def __init__(self):
                self._lock = threading.Lock()
                self._spans = []

            def merge_from(self, other):
                self._spans.extend(other._spans)


        class Instrumentation:
            def __init__(self):
                self.trace = TraceLog()
        """
    result = lint(tmp_path, source, ["FRK001"])
    (finding,) = result.findings
    assert finding.code == "FRK001"
    assert "TraceLog" in finding.message
    assert "_lock" in finding.message


def test_frk001_hazard_in_constructed_record(tmp_path):
    """The closure follows classes a store *constructs*, not just holds."""
    source = """
        class Sample:
            def __init__(self):
                self.thunk = lambda: 0


        class Store:
            def __init__(self):
                self._items = []

            def record(self):
                self._items.append(Sample())

            def merge_from(self, other):
                self._items.extend(other._items)


        class Instrumentation:
            def __init__(self):
                self.store = Store()
        """
    result = lint(tmp_path, source, ["FRK001"])
    (finding,) = result.findings
    assert "Sample" in finding.message
    assert "thunk" in finding.message


def test_frk001_ignores_classes_outside_the_closure(tmp_path):
    """A lock in a class that never crosses the fork is fine."""
    source = """
        import threading


        class Unrelated:
            def __init__(self):
                self._lock = threading.Lock()


        class FlowLog:
            def __init__(self):
                self._records = []

            def merge_from(self, other):
                self._records.extend(other._records)


        class Instrumentation:
            def __init__(self):
                self.flows = FlowLog()
        """
    result = lint(tmp_path, source, ["FRK001"])
    assert result.findings == []


def test_frk002_missing_merge_from(tmp_path):
    source = """
        class SpanLog:
            def __init__(self):
                self._spans = []


        class Instrumentation:
            def __init__(self):
                self.spans = SpanLog()
        """
    result = lint(tmp_path, source, ["FRK002"])
    (finding,) = result.findings
    assert finding.code == "FRK002"
    assert "no merge_from" in finding.message


def test_frk002_inherited_merge_from_counts(tmp_path):
    source = """
        class Mergeable:
            def merge_from(self, other):
                raise NotImplementedError


        class SpanLog(Mergeable):
            def __init__(self):
                self._spans = []


        class Instrumentation:
            def __init__(self):
                self.spans = SpanLog()
        """
    result = lint(tmp_path, source, ["FRK002"])
    assert result.findings == []


def test_frk002_dense_id_store_must_renumber(tmp_path):
    source = """
        class AlertLog:
            def __init__(self):
                self._alerts = []
                self._next_id = 0

            def fire(self, alert):
                self._next_id += 1
                self._alerts.append((self._next_id, alert))

            def merge_from(self, other):
                self._alerts.extend(other._alerts)


        class Instrumentation:
            def __init__(self):
                self.alerts = AlertLog()
        """
    result = lint(tmp_path, source, ["FRK002"])
    (finding,) = result.findings
    assert "renumber" in finding.message
    assert "AlertLog" in finding.message


def test_frk_rules_span_modules(tmp_path):
    """Store defined in one module, registered from another."""
    (tmp_path / "stores.py").write_text(
        textwrap.dedent(
            """
            import threading


            class TraceLog:
                def __init__(self):
                    self._lock = threading.Lock()

                def merge_from(self, other):
                    pass
            """
        )
    )
    (tmp_path / "instrument.py").write_text(
        textwrap.dedent(
            """
            from stores import TraceLog


            class Instrumentation:
                def __init__(self):
                    self.trace = TraceLog()
            """
        )
    )
    result = run_lint([str(tmp_path)], select=["FRK001"])
    (finding,) = result.findings
    assert "stores.py" in finding.path
