"""Unit and property tests for the Section II-B transfer model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model import (
    gain_fraction,
    gain_series,
    rounds_schedule,
    rtts_to_complete,
    segments_for,
    transfer_time,
)

MSS = 1460


class TestSegments:
    def test_exact_multiple(self):
        assert segments_for(10 * MSS) == 10

    def test_partial_segment_rounds_up(self):
        assert segments_for(10 * MSS + 1) == 11

    def test_zero_bytes(self):
        assert segments_for(0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            segments_for(-1)

    def test_invalid_mss_rejected(self):
        with pytest.raises(ValueError):
            segments_for(1000, mss=0)


class TestRoundsSchedule:
    def test_doubling_schedule(self):
        assert rounds_schedule(10, 4) == [10, 30, 70, 150]

    def test_zero_rounds(self):
        assert rounds_schedule(10, 0) == []

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            rounds_schedule(0, 3)
        with pytest.raises(ValueError):
            rounds_schedule(10, -1)


class TestRttsToComplete:
    def test_fits_in_initial_window(self):
        assert rtts_to_complete(10 * MSS, 10) == 1

    def test_one_byte_over_needs_second_round(self):
        assert rtts_to_complete(10 * MSS + 1, 10) == 2

    def test_zero_bytes_needs_no_rtts(self):
        assert rtts_to_complete(0, 10) == 0

    def test_paper_example_100kb(self):
        """100 KB (69 segments): slow start covers 10/30/70 cumulative,
        so IW10 needs 3 rounds while IW100 needs a single one."""
        assert rtts_to_complete(100_000, 10) == 3
        assert rtts_to_complete(100_000, 25) == 2
        assert rtts_to_complete(100_000, 50) == 2
        assert rtts_to_complete(100_000, 100) == 1

    def test_15kb_boundary(self):
        """Paper: flows larger than ~15KB need more than a single RTT."""
        assert rtts_to_complete(14_600, 10) == 1
        assert rtts_to_complete(15_001, 10) == 2

    def test_invalid_initcwnd_rejected(self):
        with pytest.raises(ValueError):
            rtts_to_complete(1000, 0)


class TestTransferTime:
    def test_scales_with_rtt(self):
        assert transfer_time(100_000, 10, 0.1) == pytest.approx(0.3)
        assert transfer_time(100_000, 10, 0.2) == pytest.approx(0.6)

    def test_handshake_adds_one_rtt(self):
        base = transfer_time(100_000, 10, 0.1)
        with_hs = transfer_time(100_000, 10, 0.1, handshake=True)
        assert with_hs == pytest.approx(base + 0.1)

    def test_handshake_not_charged_for_empty_transfer(self):
        assert transfer_time(0, 10, 0.1, handshake=True) == 0.0

    def test_negative_rtt_rejected(self):
        with pytest.raises(ValueError):
            transfer_time(1000, 10, -0.1)


class TestGain:
    def test_no_gain_for_tiny_files(self):
        assert gain_fraction(5_000, 100) == 0.0

    def test_gain_for_100kb(self):
        # 3 RTTs -> 1 RTT is a 2/3 reduction.
        assert gain_fraction(100_000, 100) == pytest.approx(2.0 / 3.0)

    def test_gain_diminishes_for_huge_files(self):
        mid = gain_fraction(100_000, 100)
        huge = gain_fraction(50_000_000, 100)
        assert huge < mid

    def test_series_matches_pointwise(self):
        sizes = [10_000, 100_000, 1_000_000]
        series = gain_series(sizes, 50)
        assert series == [gain_fraction(s, 50) for s in sizes]

    def test_zero_byte_gain_is_zero(self):
        assert gain_fraction(0, 100) == 0.0


sizes = st.integers(min_value=0, max_value=100_000_000)
windows = st.integers(min_value=1, max_value=500)


@given(size=sizes, iw=windows)
def test_rtts_decrease_with_larger_windows(size, iw):
    assert rtts_to_complete(size, iw + 1) <= rtts_to_complete(size, iw)


@given(size=sizes, iw=windows)
def test_rtts_consistent_with_schedule(size, iw):
    """r rounds are enough iff the cumulative schedule covers the file."""
    r = rtts_to_complete(size, iw)
    n = segments_for(size)
    if r == 0:
        assert n == 0
    else:
        schedule = rounds_schedule(iw, r)
        assert schedule[-1] >= n
        if r > 1:
            assert schedule[-2] < n


@given(size=sizes, iw=st.integers(min_value=10, max_value=500))
def test_gain_bounded_for_windows_at_least_baseline(size, iw):
    gain = gain_fraction(size, iw, baseline_initcwnd=10)
    assert 0.0 <= gain < 1.0


@given(size=sizes, iw=st.integers(min_value=1, max_value=9))
def test_gain_negative_for_windows_below_baseline(size, iw):
    """Shrinking the window can only cost round trips."""
    assert gain_fraction(size, iw, baseline_initcwnd=10) <= 0.0 + 1e-9
