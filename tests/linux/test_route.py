"""Unit and property tests for the route table."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.linux import RouteEntry, RouteTable
from repro.net import IPv4Address, Prefix


def entry(prefix: str, initcwnd: int | None = None, initrwnd: int | None = None):
    return RouteEntry(prefix=Prefix.parse(prefix), initcwnd=initcwnd, initrwnd=initrwnd)


class TestRouteEntry:
    def test_invalid_initcwnd_rejected(self):
        with pytest.raises(ValueError):
            entry("10.0.0.0/24", initcwnd=0)

    def test_invalid_initrwnd_rejected(self):
        with pytest.raises(ValueError):
            entry("10.0.0.0/24", initrwnd=-5)

    def test_format_linux_includes_attributes(self):
        text = entry("10.0.0.127/32", initcwnd=80).format_linux()
        assert "10.0.0.127/32" in text
        assert "initcwnd 80" in text
        assert "proto static" in text

    def test_format_linux_omits_absent_attributes(self):
        text = entry("10.0.0.0/24").format_linux()
        assert "initcwnd" not in text
        assert "initrwnd" not in text


class TestRouteTable:
    def test_add_and_lookup(self):
        table = RouteTable()
        table.add(entry("10.0.0.0/24", initcwnd=50))
        found = table.lookup(IPv4Address("10.0.0.7"))
        assert found is not None
        assert found.initcwnd == 50

    def test_lookup_miss_returns_none(self):
        table = RouteTable()
        table.add(entry("10.0.0.0/24"))
        assert table.lookup(IPv4Address("192.168.0.1")) is None

    def test_longest_prefix_wins(self):
        table = RouteTable()
        table.add(entry("0.0.0.0/0", initcwnd=10))
        table.add(entry("10.0.0.0/8", initcwnd=20))
        table.add(entry("10.1.0.0/16", initcwnd=30))
        table.add(entry("10.1.2.0/24", initcwnd=40))
        table.add(entry("10.1.2.3/32", initcwnd=50))
        assert table.lookup(IPv4Address("10.1.2.3")).initcwnd == 50
        assert table.lookup(IPv4Address("10.1.2.4")).initcwnd == 40
        assert table.lookup(IPv4Address("10.1.9.9")).initcwnd == 30
        assert table.lookup(IPv4Address("10.9.9.9")).initcwnd == 20
        assert table.lookup(IPv4Address("11.0.0.1")).initcwnd == 10

    def test_duplicate_add_rejected(self):
        table = RouteTable()
        table.add(entry("10.0.0.0/24"))
        with pytest.raises(KeyError):
            table.add(entry("10.0.0.0/24"))

    def test_replace_overwrites(self):
        table = RouteTable()
        table.add(entry("10.0.0.0/24", initcwnd=10))
        table.replace(entry("10.0.0.0/24", initcwnd=99))
        assert table.lookup(IPv4Address("10.0.0.1")).initcwnd == 99
        assert len(table) == 1

    def test_delete_removes(self):
        table = RouteTable()
        table.add(entry("10.0.0.0/24", initcwnd=10))
        removed = table.delete(Prefix.parse("10.0.0.0/24"))
        assert removed.initcwnd == 10
        assert table.lookup(IPv4Address("10.0.0.1")) is None

    def test_delete_missing_raises(self):
        with pytest.raises(KeyError):
            RouteTable().delete(Prefix.parse("10.0.0.0/24"))

    def test_entries_sorted_most_specific_first(self):
        table = RouteTable()
        table.add(entry("0.0.0.0/0"))
        table.add(entry("10.0.0.5/32"))
        table.add(entry("10.0.0.0/24"))
        lengths = [e.prefix.length for e in table.entries()]
        assert lengths == [32, 24, 0]

    def test_update_attributes(self):
        table = RouteTable()
        table.add(entry("10.0.0.0/24", initcwnd=10))
        table.update_attributes(Prefix.parse("10.0.0.0/24"), initcwnd=70)
        assert table.lookup(IPv4Address("10.0.0.1")).initcwnd == 70

    def test_update_attributes_preserves_unspecified(self):
        """Regression: updating one attribute used to clobber the rest."""
        table = RouteTable()
        table.add(entry("10.0.0.0/24", initcwnd=10, initrwnd=200))
        table.update_attributes(Prefix.parse("10.0.0.0/24"), initcwnd=70)
        updated = table.lookup(IPv4Address("10.0.0.1"))
        assert updated.initcwnd == 70
        assert updated.initrwnd == 200

    def test_update_attributes_explicit_none_still_clears(self):
        table = RouteTable()
        table.add(entry("10.0.0.0/24", initcwnd=10, initrwnd=200))
        table.update_attributes(Prefix.parse("10.0.0.0/24"), initrwnd=None)
        updated = table.lookup(IPv4Address("10.0.0.1"))
        assert updated.initcwnd == 10  # untouched
        assert updated.initrwnd is None  # explicitly cleared

    def test_get_exact_prefix_only(self):
        table = RouteTable()
        table.add(entry("10.0.0.0/24", initcwnd=10))
        assert table.get(Prefix.parse("10.0.0.0/24")) is not None
        assert table.get(Prefix.parse("10.0.0.0/25")) is None


addresses = st.integers(min_value=0, max_value=2**32 - 1)


@given(
    address=addresses,
    lengths=st.lists(st.integers(min_value=0, max_value=32), min_size=1, max_size=8, unique=True),
)
def test_lookup_always_selects_longest_matching_prefix(address, lengths):
    """Among routes that all contain the address, LPM picks the longest."""
    table = RouteTable()
    for length in lengths:
        table.add(
            RouteEntry(prefix=Prefix.containing(address, length), initcwnd=length + 1)
        )
    found = table.lookup(IPv4Address(address))
    assert found is not None
    assert found.prefix.length == max(lengths)


@given(address=addresses, other=addresses)
def test_host_route_never_matches_other_addresses(address, other):
    table = RouteTable()
    table.add(RouteEntry(prefix=Prefix.host(IPv4Address(address)), initcwnd=42))
    found = table.lookup(IPv4Address(other))
    if address != other:
        assert found is None
    else:
        assert found.initcwnd == 42
