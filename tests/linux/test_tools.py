"""Unit tests for the ip/ss tool façades and sysctl."""

import pytest

from repro.linux import Host, Sysctl
from repro.net import IPv4Address, Prefix
from repro.tcp import TcpConfig
from repro.testing import TwoHostTestbed, request_response


@pytest.fixture
def host(testbed):
    return testbed.client


class TestIpRouteTool:
    def test_route_add_paper_example(self, host):
        """Figure 8: ip route add 10.0.0.127 ... initcwnd 80."""
        host.ip.route_add("10.0.0.127", initcwnd=80)
        route = host.ip.route_get("10.0.0.127")
        assert route is not None
        assert route.initcwnd == 80
        assert route.prefix.length == 32

    def test_route_add_duplicate_rejected(self, host):
        host.ip.route_add("10.0.0.127", initcwnd=80)
        with pytest.raises(KeyError):
            host.ip.route_add("10.0.0.127", initcwnd=90)

    def test_route_replace_upserts(self, host):
        host.ip.route_replace("10.0.0.127", initcwnd=80)
        host.ip.route_replace("10.0.0.127", initcwnd=95)
        assert host.ip.route_get("10.0.0.127").initcwnd == 95

    def test_route_del(self, host):
        host.ip.route_replace("10.0.0.127", initcwnd=80)
        host.ip.route_del("10.0.0.127")
        assert host.ip.route_get("10.0.0.127") is None

    def test_route_del_missing_raises(self, host):
        with pytest.raises(KeyError):
            host.ip.route_del("10.0.0.127")

    def test_route_show_renders_lines(self, host):
        host.ip.route_replace("10.1.0.0/24", initcwnd=60, initrwnd=120)
        lines = host.ip.route_show()
        assert any("initcwnd 60" in line and "initrwnd 120" in line for line in lines)

    def test_accepts_prefix_objects(self, host):
        host.ip.route_replace(Prefix.parse("10.1.0.0/24"), initcwnd=33)
        assert host.initcwnd_for(IPv4Address("10.1.0.9")) == 33

    def test_accepts_address_objects(self, host):
        host.ip.route_replace(IPv4Address("10.1.0.9"), initcwnd=44)
        assert host.initcwnd_for(IPv4Address("10.1.0.9")) == 44
        assert host.initcwnd_for(IPv4Address("10.1.0.10")) == 10

    def test_commands_counted(self, host):
        host.ip.route_replace("10.0.0.127", initcwnd=80)
        host.ip.route_del("10.0.0.127")
        assert host.ip.commands_issued == 2


class TestSsTool:
    def test_reports_established_connections(self, testbed):
        request_response(testbed, response_bytes=5000)
        infos = testbed.client.ss.tcp_info()
        assert len(infos) == 1
        assert infos[0].remote_address == testbed.server.address
        assert infos[0].cwnd >= 1

    def test_outgoing_only_filter(self, testbed):
        request_response(testbed, response_bytes=5000)
        assert len(testbed.client.ss.tcp_info(outgoing_only=True)) == 1
        assert len(testbed.server.ss.tcp_info(outgoing_only=True)) == 0

    def test_created_after_filter(self, testbed):
        request_response(testbed, response_bytes=5000)
        now = testbed.sim.now
        assert testbed.client.ss.tcp_info(created_after=now + 1) == []
        assert len(testbed.client.ss.tcp_info(created_after=0.0)) == 1

    def test_cwnd_reflects_growth(self, testbed):
        request_response(testbed, response_bytes=200_000)
        server_info = testbed.server.ss.tcp_info()
        assert server_info[0].cwnd > 10  # slow start grew past IW10

    def test_format_lines(self, testbed):
        request_response(testbed, response_bytes=5000)
        lines = testbed.client.ss.format_lines()
        assert len(lines) == 1
        assert "cwnd:" in lines[0]

    def test_poll_counter(self, testbed):
        testbed.client.ss.tcp_info()
        testbed.client.ss.tcp_info()
        assert testbed.client.ss.polls == 2


class TestSysctl:
    def test_defaults_match_linux(self):
        sysctl = Sysctl()
        assert sysctl.get("net.ipv4.tcp_initcwnd_default") == 10
        assert sysctl.get("net.ipv4.tcp_congestion_control") == "cubic"

    def test_set_produces_new_config(self):
        sysctl = Sysctl()
        sysctl.set("net.ipv4.tcp_initrwnd_default", 256)
        assert sysctl.config.default_initrwnd == 256

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            Sysctl().get("net.ipv4.nonsense")

    def test_dump_lists_all(self):
        dump = Sysctl().dump()
        assert "net.ipv4.tcp_congestion_control" in dump
        assert len(dump) == len(Sysctl().names())

    def test_invalid_value_rejected_via_config_validation(self):
        sysctl = Sysctl()
        with pytest.raises(ValueError):
            sysctl.set("net.ipv4.tcp_initcwnd_default", 0)


class TestHost:
    def test_ephemeral_ports_unique(self, testbed):
        first = testbed.client.connect(testbed.server.address, 80)
        second = testbed.client.connect(testbed.server.address, 80)
        assert first.local_port != second.local_port

    def test_initcwnd_for_uses_config_default(self, testbed):
        assert testbed.client.initcwnd_for(testbed.server.address) == 10

    def test_initrwnd_route_override(self, testbed):
        testbed.client.ip.route_replace("10.1.0.0/24", initrwnd=200)
        assert testbed.client.initrwnd_for(testbed.server.address) == 200

    def test_unmatched_packets_counted(self, testbed):
        from repro.net import Packet

        testbed.network.send(
            Packet(testbed.client.address, testbed.server.address, 100, payload="junk")
        )
        testbed.sim.run_until_idle()
        assert testbed.server.packets_unmatched == 1

    def test_custom_config_respected(self):
        bed = TwoHostTestbed(client_config=TcpConfig(default_initcwnd=42))
        sock = bed.client.connect(bed.server.address, 80)
        assert sock.cc.initial_cwnd == 42
