"""Tests for the reboot failure case (Section II-A).

"Simple procedures that close all connections to a node (e.g., rebooting
to apply updates) lose not only local connection information, but
eliminate all information about the node on remote machines."
"""

import pytest

from repro.core import RiptideAgent, RiptideConfig
from repro.net import Prefix
from repro.tcp import TcpConfig
from repro.testing import TwoHostTestbed, request_response


def make_testbed():
    bed = TwoHostTestbed(
        rtt=0.080,
        client_config=TcpConfig(default_initrwnd=300),
        server_config=TcpConfig(default_initrwnd=300),
    )
    bed.serve_echo()
    return bed


class TestReboot:
    def test_reboot_clears_sockets_and_routes(self):
        bed = make_testbed()
        request_response(bed, response_bytes=50_000)
        bed.server.ip.route_replace("10.0.0.0/24", initcwnd=50)
        assert bed.server.socket_count() == 1
        bed.server.reboot()
        assert bed.server.socket_count() == 0
        assert len(bed.server.route_table) == 0
        assert bed.server.reboots == 1

    def test_listeners_survive_reboot(self):
        bed = make_testbed()
        bed.server.reboot()
        # Services restart with the machine: new connections succeed.
        result = request_response(bed, response_bytes=10_000)
        assert result.completed

    def test_peer_discovers_death_via_timers(self):
        bed = make_testbed()
        errors = []
        sock = bed.client.connect(
            bed.server.address, 80, on_error=lambda s, reason: errors.append(reason)
        )
        bed.sim.run(until=1.0)
        bed.server.reboot()
        # The client sends into the void; retransmissions back off to the
        # 120 s RTO cap before the tcp_retries2-style limit gives up.
        sock.send_message(("get", 10_000), 200)
        bed.sim.run(until=bed.sim.now + 2000.0)
        assert sock.is_closed
        assert errors and "timeout" in errors[0]

    def test_riptide_state_lost_and_relearned(self):
        bed = make_testbed()
        agent = RiptideAgent(bed.server, RiptideConfig(update_interval=0.5))
        agent.start()
        request_response(bed, response_bytes=500_000)
        bed.sim.run(until=bed.sim.now + 2.0)
        key = Prefix.host(bed.client.address)
        assert agent.learned_window_for(key) > 10

        bed.server.reboot()
        # Operational reality: the agent restarts with the machine.
        agent.stop(remove_routes=False)
        fresh_agent = RiptideAgent(bed.server, RiptideConfig(update_interval=0.5))
        fresh_agent.start()
        assert fresh_agent.learned_window_for(key) is None
        assert bed.server.initcwnd_for(bed.client.address) == 10

        # New traffic re-teaches the path.
        request_response(bed, response_bytes=500_000)
        bed.sim.run(until=bed.sim.now + 2.0)
        assert fresh_agent.learned_window_for(key) > 10

    def test_remote_entries_about_rebooted_node_expire(self):
        """The *client's* agent loses what it knew about the rebooted
        server once its connections die and the TTL lapses."""
        bed = make_testbed()
        client_agent = RiptideAgent(
            bed.client, RiptideConfig(update_interval=0.5, ttl=3.0)
        )
        client_agent.start()
        request_response(bed, response_bytes=200_000)
        bed.sim.run(until=bed.sim.now + 1.0)
        key = Prefix.host(bed.server.address)
        assert client_agent.learned_window_for(key) is not None

        bed.server.reboot()
        # The client's socket lingers established (nothing in flight), so
        # close it as an application eventually would, then let TTL lapse.
        for sock in list(bed.client.sockets()):
            sock.vanish()
        bed.sim.run(until=bed.sim.now + 6.0)
        assert client_agent.learned_window_for(key) is None
        assert bed.client.initcwnd_for(bed.server.address) == 10
