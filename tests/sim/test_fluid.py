"""Tests for the mean-field fluid engine (`repro.sim.fluid`).

The closed-form checks pin the model to its analytics: mass is
conserved, drift moves the mean at exactly the configured rate, loss
halves the right bins, churn settles at its fixed point, and stepping
is bit-deterministic.
"""

import math

import pytest

from repro.sim.fluid import CwndDistribution, FluidConfig, FluidPopulation


class TestFluidConfig:
    def test_defaults_validate(self):
        config = FluidConfig()
        assert config.cadence == 0.25
        assert config.max_window == 320

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cadence": 0.0},
            {"max_window": 1},
            {"bin_width": 0},
            {"loss_smoothing": 0.0},
            {"loss_smoothing": 1.5},
            {"ss_samples": 0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FluidConfig(**kwargs)


class TestCwndDistribution:
    def test_add_mass_tracks_totals(self):
        dist = CwndDistribution(max_window=100)
        dist.add_mass(10, 5.0)
        dist.add_mass(20, 3.0)
        assert dist.flows == pytest.approx(8.0)
        assert dist.total_window_segments() == pytest.approx(5 * 10 + 3 * 20)
        assert dist.mean() == pytest.approx(110 / 8)

    def test_window_bin_round_trip(self):
        dist = CwndDistribution(max_window=320, bin_width=4)
        for window in (1, 4, 5, 100, 317):
            b = dist.window_to_bin(window)
            assert dist.bin_to_window(b) <= window
            assert window <= dist.bin_to_window(b) + dist.bin_width - 1

    def test_no_loss_drift_is_exact(self):
        """With zero loss the mean advances at exactly the drift rate."""
        dist = CwndDistribution(max_window=320)
        dist.add_mass(10, 1000.0)
        for _ in range(10):
            dist.step(0.25, rtt=0.1, loss_rate=0.0, drift_segments_per_sec=100.0)
        # 10 steps x 0.25 s x 100 seg/s = 250 segments of drift.
        assert dist.mean() == pytest.approx(260.0, rel=1e-9)
        assert dist.flows == pytest.approx(1000.0)

    def test_mass_conserved_under_loss(self):
        dist = CwndDistribution(max_window=320)
        dist.add_mass(64, 500.0)
        for _ in range(200):
            dist.step(0.25, rtt=0.1, loss_rate=0.01, drift_segments_per_sec=10.0)
        assert dist.flows == pytest.approx(500.0, rel=1e-6)

    def test_halving_moves_mass_to_half_bin(self):
        dist = CwndDistribution(max_window=320)
        dist.add_mass(100, 1.0)
        # One step, certain loss, no drift: everything lands at w/2.
        events = dist.step(
            0.25, rtt=0.1, loss_rate=1.0, drift_segments_per_sec=0.0
        )
        assert events == pytest.approx(1.0)
        assert dist.quantile(0.5) == 50

    def test_drift_clamps_at_top_bin(self):
        dist = CwndDistribution(max_window=100)
        dist.add_mass(95, 10.0)
        for _ in range(20):
            dist.step(0.25, rtt=0.1, loss_rate=0.0, drift_segments_per_sec=50.0)
        assert dist.mean() == pytest.approx(dist.max_window)
        assert dist.flows == pytest.approx(10.0)

    def test_lossy_equilibrium_is_stationary(self):
        """AIMD drift against loss halving settles, and stays settled."""
        dist = CwndDistribution(max_window=320)
        dist.add_mass(10, 1000.0)
        for _ in range(400):
            dist.step(0.25, rtt=0.1, loss_rate=0.02, drift_segments_per_sec=10.0)
        settled = dist.mean()
        for _ in range(100):
            dist.step(0.25, rtt=0.1, loss_rate=0.02, drift_segments_per_sec=10.0)
        assert dist.mean() == pytest.approx(settled, rel=0.01)
        assert 2.0 < settled < 50.0

    def test_send_rate_cap_limits_loss_exposure(self):
        """A rate-capped cohort sees loss per segment *sent*, not per
        window — idle request/response flows keep large windows alive."""
        bulk = CwndDistribution(max_window=320)
        capped = CwndDistribution(max_window=320)
        for dist in (bulk, capped):
            dist.add_mass(150, 100.0)
        bulk_events = bulk.step(0.25, 0.1, 0.001, 0.0)
        capped_events = capped.step(0.25, 0.1, 0.001, 0.0, send_rate_cap=20.0)
        # Bulk: p * w/rtt = .001 * 1500 = 1.5 events/flow/s; capped: .02.
        assert bulk_events > capped_events * 10
        assert capped_events == pytest.approx(100 * 0.001 * 20.0 * 0.25, rel=1e-6)

    def test_total_send_rate_respects_cap(self):
        dist = CwndDistribution(max_window=320)
        dist.add_mass(100, 10.0)
        uncapped = dist.total_send_segments_per_sec(0.1)
        assert uncapped == pytest.approx(10 * 100 / 0.1)
        capped = dist.total_send_segments_per_sec(0.1, send_rate_cap=50.0)
        assert capped == pytest.approx(10 * 50.0)

    def test_quantiles_and_samples_are_ordered(self):
        dist = CwndDistribution(max_window=320)
        dist.add_mass(10, 5.0)
        dist.add_mass(50, 5.0)
        dist.add_mass(200, 5.0)
        samples = dist.sample_windows(9)
        assert samples == sorted(samples)
        assert samples[0] == 10 and samples[-1] == 200
        assert dist.quantile(0.0) == 10
        assert dist.quantile(1.0) == 200

    def test_sample_mean_tracks_distribution_mean(self):
        dist = CwndDistribution(max_window=320)
        dist.add_mass(20, 400.0)
        for _ in range(100):
            dist.step(0.25, rtt=0.1, loss_rate=0.01, drift_segments_per_sec=8.0)
        samples = dist.sample_windows(64)
        sample_mean = sum(samples) / len(samples)
        assert sample_mean == pytest.approx(dist.mean(), rel=0.1)

    def test_remove_fraction(self):
        dist = CwndDistribution(max_window=100)
        dist.add_mass(10, 8.0)
        assert dist.remove_fraction(0.25) == pytest.approx(2.0)
        assert dist.flows == pytest.approx(6.0)
        assert dist.remove_fraction(1.0) == pytest.approx(6.0)
        assert dist.flows == 0.0
        assert dist.sample_windows(3) == [1, 1, 1]

    def test_stepping_is_bit_deterministic(self):
        def run():
            dist = CwndDistribution(max_window=320)
            dist.add_mass(10, 1234.5)
            out = []
            for i in range(50):
                out.append(
                    dist.step(0.25, 0.09, 0.005, 12.0, send_rate_cap=30.0)
                )
            return out, list(dist._bin_mass), dist.flows

        assert run() == run()


class TestFluidPopulation:
    def test_refill_holds_target(self):
        pop = FluidPopulation(
            "p", rtt=0.1, target_flows=100.0, entry_window=10,
            churn_per_flow_per_sec=0.5,
        )
        for _ in range(50):
            pop.step(0.25, loss_rate=0.0, entry_window=10)
        assert pop.flows == pytest.approx(100.0, rel=1e-6)

    def test_churn_fixed_point(self):
        """Mean settles at entry + growth/churn (no loss)."""
        growth, churn, entry = 5.0, 0.5, 10
        pop = FluidPopulation(
            "p", rtt=0.1, target_flows=1000.0, entry_window=entry,
            max_window=320, growth_segments_per_sec=growth,
            churn_per_flow_per_sec=churn,
        )
        for _ in range(1200):
            pop.step(0.25, loss_rate=0.0, entry_window=entry)
        assert pop.mean_window() == pytest.approx(entry + growth / churn, rel=0.05)

    def test_entry_window_follows_routes(self):
        """Raising the entry window (a Riptide install) lifts the cohort."""
        pop = FluidPopulation(
            "p", rtt=0.1, target_flows=100.0, entry_window=10,
            growth_segments_per_sec=1.0, churn_per_flow_per_sec=1.0,
        )
        for _ in range(200):
            pop.step(0.25, loss_rate=0.0, entry_window=10)
        before = pop.mean_window()
        for _ in range(200):
            pop.step(0.25, loss_rate=0.0, entry_window=100)
        assert pop.mean_window() > before + 50

    def test_counters_accumulate(self):
        pop = FluidPopulation(
            "p", rtt=0.1, target_flows=10.0, entry_window=10,
        )
        pop.step(0.25, loss_rate=0.01, entry_window=10)
        first = (pop.segments_sent_total, pop.segments_retx_total,
                 pop.bytes_acked_total)
        assert all(v > 0 for v in first)
        pop.step(0.25, loss_rate=0.01, entry_window=10)
        assert pop.segments_sent_total > first[0]
        assert pop.segments_retx_total > first[1]
        assert pop.bytes_acked_total > first[2]

    def test_offered_bps_matches_window_footprint(self):
        pop = FluidPopulation(
            "p", rtt=0.1, target_flows=10.0, entry_window=20, mss=1460,
        )
        expected = 10 * 20 * 1460 * 8 / 0.1
        assert pop.offered_bps() == pytest.approx(expected)

    def test_send_cap_bounds_offered_bps(self):
        pop = FluidPopulation(
            "p", rtt=0.1, target_flows=10.0, entry_window=20, mss=1460,
            send_segments_per_flow_per_sec=5.0,
        )
        assert pop.offered_bps() == pytest.approx(10 * 5.0 * 1460 * 8)

    def test_sample_ages_exponential_mid_quantiles(self):
        pop = FluidPopulation(
            "p", rtt=0.1, target_flows=10.0, entry_window=10,
            churn_per_flow_per_sec=0.5, created_at=0.0,
        )
        ages = pop.sample_ages(4, now=1000.0)
        expected = [-math.log(1.0 - (i + 0.5) / 4) / 0.5 for i in range(4)]
        assert ages == pytest.approx(expected)
        # Without churn every flow is as old as the population.
        eternal = FluidPopulation(
            "q", rtt=0.1, target_flows=10.0, entry_window=10, created_at=40.0,
        )
        assert eternal.sample_ages(3, now=100.0) == [60.0] * 3

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rtt": 0.0},
            {"target_flows": 0.0},
            {"churn_per_flow_per_sec": -1.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        defaults = dict(
            name="p", rtt=0.1, target_flows=10.0, entry_window=10
        )
        defaults.update(kwargs)
        with pytest.raises(ValueError):
            FluidPopulation(**defaults)
