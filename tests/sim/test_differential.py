"""Differential test: the rewritten event queue vs the original heapq one.

The pre-rewrite queue — a plain ``heapq`` of :class:`Event` objects with
``__lt__`` ordering and a live counter — is kept here as a test oracle.
Randomized schedule/cancel/pop traces (including cancel-heavy mixes and
same-timestamp bursts) are run through both implementations; pop order
and ``len()`` must match step for step.  This is what "the rewrite must
preserve the exact ``(time, seq)`` firing order" means operationally.
"""

from __future__ import annotations

import heapq
import random

import pytest

from repro.sim.events import Event, EventQueue


class OracleQueue:
    """The original heap-of-events queue, verbatim semantics."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def push(self, event: Event) -> None:
        heapq.heappush(self._heap, event)
        self._live += 1

    def pop(self) -> Event:
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)
            if event.cancelled:
                continue
            event.fired = True
            self._live -= 1
            return event
        raise IndexError("pop from empty event queue")

    def peek_time(self) -> float:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            raise IndexError("peek on empty event queue")
        return self._heap[0].time

    def note_cancelled(self) -> None:
        if self._live > 0:
            self._live -= 1


def _run_trace(
    seed: int,
    steps: int,
    cancel_weight: float,
    burst_weight: float,
) -> None:
    """Drive both queues through one random trace and compare them."""
    rng = random.Random(seed)
    oracle = OracleQueue()
    queue = EventQueue()
    seq = 0
    # Parallel handle lists: index i is the same logical event in both.
    oracle_handles: list[Event] = []
    queue_handles: list[Event] = []
    popped_oracle: list[tuple[float, int]] = []
    popped_queue: list[tuple[float, int]] = []

    def push_one(time: float) -> None:
        nonlocal seq
        for handles, target in ((oracle_handles, oracle), (queue_handles, queue)):
            event = Event(time, seq, lambda: None)
            target.push(event)
            handles.append(event)
        seq += 1

    for _ in range(steps):
        roll = rng.random()
        if roll < burst_weight:
            # Same-timestamp burst: ordering must fall to seq.
            time = round(rng.uniform(0, 50), 1)
            for _ in range(rng.randint(2, 8)):
                push_one(time)
        elif roll < burst_weight + cancel_weight:
            if oracle_handles:
                index = rng.randrange(len(oracle_handles))
                o_event = oracle_handles[index]
                q_event = queue_handles[index]
                assert o_event.cancelled == q_event.cancelled
                assert o_event.fired == q_event.fired
                if not o_event.cancelled and not o_event.fired:
                    o_event.cancel()
                    oracle.note_cancelled()
                    q_event.cancel()
                    queue.note_cancelled()
        elif roll < burst_weight + cancel_weight + 0.25:
            if len(oracle):
                popped_oracle.append(_key(oracle.pop()))
            if len(queue):
                popped_queue.append(_key(queue.pop()))
        else:
            push_one(round(rng.uniform(0, 100), 3))
        assert len(oracle) == len(queue)
        if len(oracle):
            assert oracle.peek_time() == queue.peek_time()
        assert popped_oracle == popped_queue

    # Drain both completely; total pop order must be identical.
    while len(oracle):
        popped_oracle.append(_key(oracle.pop()))
    while len(queue):
        popped_queue.append(_key(queue.pop()))
    assert popped_oracle == popped_queue
    assert len(oracle) == len(queue) == 0


def _key(event: Event) -> tuple[float, int]:
    return (event.time, event.seq)


@pytest.mark.parametrize("seed", range(10))
def test_differential_mixed_trace(seed: int) -> None:
    _run_trace(seed, steps=400, cancel_weight=0.2, burst_weight=0.1)


@pytest.mark.parametrize("seed", range(10, 16))
def test_differential_cancel_heavy(seed: int) -> None:
    """RTO-rearm-style traces: most scheduled events die before firing.

    Cancel weight is high enough that tombstone compaction triggers many
    times over the trace, exercising the in-place rebuild path."""
    _run_trace(seed, steps=1200, cancel_weight=0.55, burst_weight=0.05)


@pytest.mark.parametrize("seed", range(16, 20))
def test_differential_same_timestamp_bursts(seed: int) -> None:
    _run_trace(seed, steps=500, cancel_weight=0.1, burst_weight=0.45)


def test_differential_pop_interleaved_with_compaction() -> None:
    """Deterministic worst case: cancel a majority, then pop through the
    compacted heap while the oracle still lazily skips its tombstones."""
    oracle = OracleQueue()
    queue = EventQueue()
    events = []
    for seq in range(500):
        time = float(seq % 7)
        o = Event(time, seq, lambda: None)
        q = Event(time, seq, lambda: None)
        oracle.push(o)
        queue.push(q)
        events.append((o, q))
    for o, q in events[::3] + events[1::5]:
        if not o.cancelled:
            o.cancel()
            oracle.note_cancelled()
            q.cancel()
            queue.note_cancelled()
    order_oracle = [_key(oracle.pop()) for _ in range(len(oracle))]
    order_queue = [_key(queue.pop()) for _ in range(len(queue))]
    assert order_oracle == order_queue
