"""Unit tests for periodic processes."""

import pytest

from repro.sim import PeriodicProcess, SchedulingError


class TestPeriodicProcess:
    def test_ticks_at_fixed_interval(self, sim):
        times = []
        process = PeriodicProcess(sim, 2.0, lambda: times.append(sim.now))
        process.start()
        sim.run(until=7.0)
        assert times == [2.0, 4.0, 6.0]
        assert process.ticks == 3

    def test_initial_delay_overrides_first_tick(self, sim):
        times = []
        process = PeriodicProcess(sim, 5.0, lambda: times.append(sim.now))
        process.start(initial_delay=0.5)
        sim.run(until=11.0)
        assert times == [0.5, 5.5, 10.5]

    def test_zero_initial_delay_ticks_immediately(self, sim):
        times = []
        process = PeriodicProcess(sim, 3.0, lambda: times.append(sim.now))
        process.start(initial_delay=0.0)
        sim.run(until=4.0)
        assert times == [0.0, 3.0]

    def test_stop_halts_ticking(self, sim):
        times = []
        process = PeriodicProcess(sim, 1.0, lambda: times.append(sim.now))
        process.start()
        sim.run(until=2.5)
        process.stop()
        sim.run(until=10.0)
        assert times == [1.0, 2.0]
        assert not process.running

    def test_stop_from_inside_callback(self, sim):
        times = []

        def tick() -> None:
            times.append(sim.now)
            if len(times) == 2:
                process.stop()

        process = PeriodicProcess(sim, 1.0, tick)
        process.start()
        sim.run(until=10.0)
        assert times == [1.0, 2.0]

    def test_start_is_idempotent(self, sim):
        times = []
        process = PeriodicProcess(sim, 1.0, lambda: times.append(sim.now))
        process.start()
        process.start()
        sim.run(until=1.5)
        assert times == [1.0]

    def test_restart_after_stop(self, sim):
        times = []
        process = PeriodicProcess(sim, 1.0, lambda: times.append(sim.now))
        process.start()
        sim.run(until=1.5)
        process.stop()
        process.start()
        sim.run(until=3.0)
        assert times == [1.0, 2.5]

    def test_non_positive_interval_rejected(self, sim):
        with pytest.raises(SchedulingError):
            PeriodicProcess(sim, 0.0, lambda: None)
        with pytest.raises(SchedulingError):
            PeriodicProcess(sim, -1.0, lambda: None)
