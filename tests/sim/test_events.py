"""Unit tests for the event queue."""

import pytest

from repro.sim.events import Event, EventQueue


def _noop() -> None:
    pass


def make_event(time: float, seq: int) -> Event:
    return Event(time, seq, _noop)


class TestEventOrdering:
    def test_orders_by_time(self):
        early, late = make_event(1.0, 5), make_event(2.0, 1)
        assert early < late

    def test_ties_broken_by_sequence(self):
        first, second = make_event(1.0, 1), make_event(1.0, 2)
        assert first < second
        assert not second < first

    def test_repr_mentions_state(self):
        event = make_event(1.0, 1)
        event.cancel()
        assert "cancelled" in repr(event)


class TestEventQueue:
    def test_pop_returns_earliest(self):
        queue = EventQueue()
        queue.push(make_event(2.0, 1))
        queue.push(make_event(1.0, 2))
        assert queue.pop().time == 1.0
        assert queue.pop().time == 2.0

    def test_same_time_pops_in_schedule_order(self):
        queue = EventQueue()
        events = [make_event(5.0, seq) for seq in range(10)]
        for event in reversed(events):
            queue.push(event)
        popped = [queue.pop().seq for _ in range(10)]
        assert popped == sorted(popped)

    def test_len_counts_live_events(self):
        queue = EventQueue()
        event = make_event(1.0, 1)
        queue.push(event)
        queue.push(make_event(2.0, 2))
        assert len(queue) == 2
        event.cancel()
        queue.note_cancelled()
        assert len(queue) == 1

    def test_pop_skips_cancelled(self):
        queue = EventQueue()
        cancelled = make_event(1.0, 1)
        queue.push(cancelled)
        queue.push(make_event(2.0, 2))
        cancelled.cancel()
        queue.note_cancelled()
        assert queue.pop().seq == 2

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        cancelled = make_event(1.0, 1)
        queue.push(cancelled)
        queue.push(make_event(3.0, 2))
        cancelled.cancel()
        queue.note_cancelled()
        assert queue.peek_time() == 3.0

    def test_peek_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().peek_time()

    def test_bool_reflects_liveness(self):
        queue = EventQueue()
        assert not queue
        event = make_event(1.0, 1)
        queue.push(event)
        assert queue
        event.cancel()
        queue.note_cancelled()
        assert not queue

    def test_cancel_is_idempotent(self):
        event = make_event(1.0, 1)
        event.cancel()
        event.cancel()
        assert event.cancelled


class TestHandleFreeEntries:
    def test_push_entry_pop_materializes_event(self):
        queue = EventQueue()
        queue.push_entry(1.0, 7, _noop, ())
        assert len(queue) == 1
        event = queue.pop()
        assert (event.time, event.seq) == (1.0, 7)
        assert event.fired

    def test_entries_and_events_interleave_by_key(self):
        queue = EventQueue()
        queue.push(make_event(2.0, 1))
        queue.push_entry(1.0, 2, _noop, ())
        queue.push_entry(2.0, 3, _noop, ())
        assert queue.peek_time() == 1.0
        assert [queue.pop().seq for _ in range(3)] == [2, 1, 3]


class TestTombstoneCompaction:
    def _fill(self, queue: EventQueue, count: int) -> list[Event]:
        events = [make_event(float(i + 1), i) for i in range(count)]
        for event in events:
            queue.push(event)
        return events

    def test_compaction_evicts_cancelled_entries(self):
        queue = EventQueue()
        events = self._fill(queue, 200)
        # Cancel enough to cross both thresholds (>= 64 tombstones and
        # tombstones making up >= half the heap): compaction fires at the
        # 100th cancel (100 * 2 >= 200), leaving the 50 later cancels as
        # resident tombstones below the minimum.
        for event in events[:150]:
            event.cancel()
            queue.note_cancelled()
        assert queue.tombstones == 50
        assert queue.heap_size == 100
        assert len(queue) == 50

    def test_no_compaction_below_minimum(self):
        queue = EventQueue()
        events = self._fill(queue, 40)
        for event in events[:30]:
            event.cancel()
            queue.note_cancelled()
        # 30 < COMPACT_MIN_TOMBSTONES: tombstones stay resident.
        assert queue.tombstones == 30
        assert queue.heap_size == 40
        assert len(queue) == 10

    def test_pop_order_preserved_across_compaction(self):
        queue = EventQueue()
        events = self._fill(queue, 300)
        for event in events[::2]:
            event.cancel()
            queue.note_cancelled()
        popped = [queue.pop().seq for _ in range(len(queue))]
        assert popped == [e.seq for e in events[1::2]]

    def test_compaction_keeps_handle_free_entries(self):
        queue = EventQueue()
        for i in range(100):
            queue.push_entry(float(i), i, _noop, ())
        events = self._fill(queue, 100)
        for event in events:
            event.cancel()
            queue.note_cancelled()
        assert len(queue) == 100
        assert queue.tombstones == 0
