"""Unit tests for the simulation kernel."""

import pytest

from repro.sim import SchedulingError, Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_clock_starts_at_custom_time(self):
        assert Simulator(start_time=7.5).now == 7.5

    def test_events_fire_in_time_order(self, sim):
        fired = []
        sim.schedule(2.0, fired.append, "b")
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(3.0, fired.append, "c")
        sim.run_until_idle()
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fire_in_schedule_order(self, sim):
        fired = []
        for tag in range(20):
            sim.schedule(1.0, fired.append, tag)
        sim.run_until_idle()
        assert fired == list(range(20))

    def test_clock_advances_to_event_time(self, sim):
        seen = []
        sim.schedule(4.25, lambda: seen.append(sim.now))
        sim.run_until_idle()
        assert seen == [4.25]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SchedulingError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run_until_idle()
        with pytest.raises(SchedulingError):
            sim.schedule_at(1.0, lambda: None)

    def test_handlers_can_schedule_more_events(self, sim):
        fired = []

        def chain(n: int) -> None:
            fired.append(n)
            if n < 5:
                sim.schedule(1.0, chain, n + 1)

        sim.schedule(1.0, chain, 1)
        sim.run_until_idle()
        assert fired == [1, 2, 3, 4, 5]
        assert sim.now == 5.0


class TestRunControl:
    def test_run_until_stops_clock_at_bound(self, sim):
        sim.schedule(10.0, lambda: None)
        end = sim.run(until=3.0)
        assert end == 3.0
        assert sim.now == 3.0
        assert sim.pending_events == 1

    def test_run_until_executes_events_at_bound(self, sim):
        fired = []
        sim.schedule(3.0, fired.append, "x")
        sim.run(until=3.0)
        assert fired == ["x"]

    def test_run_resumes_after_until(self, sim):
        fired = []
        sim.schedule(5.0, fired.append, "later")
        sim.run(until=1.0)
        assert fired == []
        sim.run(until=10.0)
        assert fired == ["later"]

    def test_max_events_bounds_execution(self, sim):
        for _ in range(10):
            sim.schedule(1.0, lambda: None)
        sim.run(max_events=4)
        assert sim.events_processed == 4
        assert sim.pending_events == 6

    def test_reentrant_run_rejected(self, sim):
        def nested() -> None:
            sim.run()

        sim.schedule(1.0, nested)
        with pytest.raises(SchedulingError):
            sim.run_until_idle()


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        handle = sim.schedule(1.0, fired.append, "x")
        sim.cancel(handle)
        sim.run_until_idle()
        assert fired == []

    def test_cancel_is_idempotent_on_kernel(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        other = sim.schedule(2.0, lambda: None)
        sim.cancel(handle)
        sim.cancel(handle)
        assert sim.pending_events == 1
        sim.cancel(other)
        assert sim.pending_events == 0

    def test_events_processed_counts_only_fired(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.cancel(handle)
        sim.run_until_idle()
        assert sim.events_processed == 1

    def test_cancel_after_fire_is_a_noop(self, sim):
        """A stale handle must not corrupt the live-event count."""
        fired = []
        handle = sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        sim.run(until=1.5)
        assert fired == ["a"]
        sim.cancel(handle)  # already fired: must not touch the queue
        assert sim.pending_events == 1
        sim.run_until_idle()
        assert fired == ["a", "b"]

    def test_cancel_after_fire_not_counted_as_cancellation(self, sim):
        from repro.obs import capture

        with capture() as instrumentation:
            inner = Simulator()
            handle = inner.schedule(1.0, lambda: None)
            inner.run_until_idle()
            inner.cancel(handle)
        assert instrumentation.metrics.counter_value("sim_events_cancelled") == 0

    def test_cancel_many_fired_handles_keeps_pending_exact(self, sim):
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(5)]
        sim.schedule(10.0, lambda: None)
        sim.run(until=6.0)
        for handle in handles:
            sim.cancel(handle)
            sim.cancel(handle)
        assert sim.pending_events == 1
