"""Unit tests for the simulation kernel."""

import pytest

from repro.sim import SchedulingError, Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_clock_starts_at_custom_time(self):
        assert Simulator(start_time=7.5).now == 7.5

    def test_events_fire_in_time_order(self, sim):
        fired = []
        sim.schedule(2.0, fired.append, "b")
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(3.0, fired.append, "c")
        sim.run_until_idle()
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fire_in_schedule_order(self, sim):
        fired = []
        for tag in range(20):
            sim.schedule(1.0, fired.append, tag)
        sim.run_until_idle()
        assert fired == list(range(20))

    def test_clock_advances_to_event_time(self, sim):
        seen = []
        sim.schedule(4.25, lambda: seen.append(sim.now))
        sim.run_until_idle()
        assert seen == [4.25]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SchedulingError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run_until_idle()
        with pytest.raises(SchedulingError):
            sim.schedule_at(1.0, lambda: None)

    def test_handlers_can_schedule_more_events(self, sim):
        fired = []

        def chain(n: int) -> None:
            fired.append(n)
            if n < 5:
                sim.schedule(1.0, chain, n + 1)

        sim.schedule(1.0, chain, 1)
        sim.run_until_idle()
        assert fired == [1, 2, 3, 4, 5]
        assert sim.now == 5.0


class TestRunControl:
    def test_run_until_stops_clock_at_bound(self, sim):
        sim.schedule(10.0, lambda: None)
        end = sim.run(until=3.0)
        assert end == 3.0
        assert sim.now == 3.0
        assert sim.pending_events == 1

    def test_run_until_executes_events_at_bound(self, sim):
        fired = []
        sim.schedule(3.0, fired.append, "x")
        sim.run(until=3.0)
        assert fired == ["x"]

    def test_run_resumes_after_until(self, sim):
        fired = []
        sim.schedule(5.0, fired.append, "later")
        sim.run(until=1.0)
        assert fired == []
        sim.run(until=10.0)
        assert fired == ["later"]

    def test_max_events_bounds_execution(self, sim):
        for _ in range(10):
            sim.schedule(1.0, lambda: None)
        sim.run(max_events=4)
        assert sim.events_processed == 4
        assert sim.pending_events == 6

    def test_reentrant_run_rejected(self, sim):
        def nested() -> None:
            sim.run()

        sim.schedule(1.0, nested)
        with pytest.raises(SchedulingError):
            sim.run_until_idle()


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        handle = sim.schedule(1.0, fired.append, "x")
        sim.cancel(handle)
        sim.run_until_idle()
        assert fired == []

    def test_cancel_is_idempotent_on_kernel(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        other = sim.schedule(2.0, lambda: None)
        sim.cancel(handle)
        sim.cancel(handle)
        assert sim.pending_events == 1
        sim.cancel(other)
        assert sim.pending_events == 0

    def test_events_processed_counts_only_fired(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.cancel(handle)
        sim.run_until_idle()
        assert sim.events_processed == 1

    def test_cancel_after_fire_is_a_noop(self, sim):
        """A stale handle must not corrupt the live-event count."""
        fired = []
        handle = sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        sim.run(until=1.5)
        assert fired == ["a"]
        sim.cancel(handle)  # already fired: must not touch the queue
        assert sim.pending_events == 1
        sim.run_until_idle()
        assert fired == ["a", "b"]

    def test_cancel_after_fire_not_counted_as_cancellation(self, sim):
        from repro.obs import capture

        with capture() as instrumentation:
            inner = Simulator()
            handle = inner.schedule(1.0, lambda: None)
            inner.run_until_idle()
            inner.cancel(handle)
        assert instrumentation.metrics.counter_value("sim_events_cancelled") == 0

    def test_cancel_many_fired_handles_keeps_pending_exact(self, sim):
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(5)]
        sim.schedule(10.0, lambda: None)
        sim.run(until=6.0)
        for handle in handles:
            sim.cancel(handle)
            sim.cancel(handle)
        assert sim.pending_events == 1


class TestMaxEventsClockJump:
    """Regression: run(until=, max_events=) must not fast-forward the
    clock past live events left behind by a max_events stop."""

    def test_clock_stays_at_last_event_on_max_events_stop(self, sim):
        for t in (1.0, 2.0, 3.0):
            sim.schedule_at(t, lambda: None)
        end = sim.run(until=10.0, max_events=2)
        assert end == 2.0
        assert sim.now == 2.0
        assert sim.pending_events == 1

    def test_interleaved_bounded_runs_never_move_clock_backwards(self, sim):
        fired = []

        def record(tag: int) -> None:
            fired.append((sim.now, tag))

        for i in range(20):
            sim.schedule_at(float(i + 1), record, i)
        observed = []
        while sim.pending_events:
            sim.run(until=100.0, max_events=3)
            observed.append(sim.now)
        assert observed == sorted(observed)
        # Every event fired at its own time, never "in the past".
        assert fired == [(float(i + 1), i) for i in range(20)]
        # Queue drained and nothing remained before the bound.
        assert sim.now == 100.0

    def test_events_fire_at_or_after_now_across_bounded_runs(self, sim):
        """No event may execute with event.time < the clock it sees."""
        violations = []

        def check(expected: float) -> None:
            if sim.now != expected:
                violations.append((sim.now, expected))

        for i in range(50):
            t = 0.25 * (i + 1)
            sim.schedule_at(t, check, t)
        while sim.pending_events:
            sim.run(until=1000.0, max_events=7)
        assert violations == []

    def test_reschedule_between_bounded_runs_is_valid(self, sim):
        """schedule_at against the un-jumped clock must not raise."""
        sim.schedule_at(1.0, lambda: None)
        sim.schedule_at(2.0, lambda: None)
        sim.run(until=50.0, max_events=1)
        assert sim.now == 1.0
        # Before the fix now was already 50.0 and this raised.
        sim.schedule_at(1.5, lambda: None)
        sim.run(until=50.0)
        assert sim.now == 50.0
        assert sim.pending_events == 0

    def test_fast_forward_still_happens_when_queue_is_later(self, sim):
        sim.schedule_at(75.0, lambda: None)
        end = sim.run(until=50.0, max_events=10)
        assert end == 50.0
        assert sim.pending_events == 1

    def test_fast_forward_when_stop_drains_exactly_at_max_events(self, sim):
        """max_events stop with nothing live before the bound still jumps."""
        sim.schedule_at(1.0, lambda: None)
        sim.schedule_at(90.0, lambda: None)
        end = sim.run(until=10.0, max_events=1)
        assert end == 10.0


class TestScheduleFire:
    def test_fire_and_forget_runs_in_order_with_handles(self, sim):
        fired = []
        sim.schedule(2.0, fired.append, "handle-2")
        sim.schedule_fire(1.0, fired.append, "fire-1")
        sim.schedule_fire(2.0, fired.append, "fire-2")
        sim.schedule(2.0, fired.append, "handle-2b")
        sim.run_until_idle()
        assert fired == ["fire-1", "handle-2", "fire-2", "handle-2b"]

    def test_fire_counts_as_pending_and_processed(self, sim):
        sim.schedule_fire(1.0, lambda: None)
        assert sim.pending_events == 1
        sim.run_until_idle()
        assert sim.events_processed == 1
        assert sim.pending_events == 0

    def test_negative_delay_rejected(self, sim):
        from repro.sim import SchedulingError

        with pytest.raises(SchedulingError):
            sim.schedule_fire(-0.5, lambda: None)

    def test_fire_consumes_sequence_numbers(self, sim):
        """Interleaving fire/handle paths preserves schedule order."""
        fired = []
        for i in range(10):
            if i % 2:
                sim.schedule(1.0, fired.append, i)
            else:
                sim.schedule_fire(1.0, fired.append, i)
        sim.run_until_idle()
        assert fired == list(range(10))
