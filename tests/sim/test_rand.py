"""Unit and property tests for seeded random streams."""

from hypothesis import given
from hypothesis import strategies as st

from repro.sim import RandomStreams


class TestRandomStreams:
    def test_same_name_returns_same_generator(self):
        streams = RandomStreams(7)
        assert streams.stream("a") is streams.stream("a")

    def test_different_names_are_independent(self):
        streams = RandomStreams(7)
        first = [streams.stream("a").random() for _ in range(5)]
        second = [streams.stream("b").random() for _ in range(5)]
        assert first != second

    def test_reproducible_across_instances(self):
        draws_one = [RandomStreams(99).stream("loss").random() for _ in range(3)]
        draws_two = [RandomStreams(99).stream("loss").random() for _ in range(3)]
        assert draws_one == draws_two

    def test_different_master_seeds_diverge(self):
        a = RandomStreams(1).stream("x").random()
        b = RandomStreams(2).stream("x").random()
        assert a != b

    def test_fork_is_deterministic(self):
        fork_a = RandomStreams(5).fork("host1").stream("s").random()
        fork_b = RandomStreams(5).fork("host1").stream("s").random()
        assert fork_a == fork_b

    def test_fork_namespaces_do_not_collide(self):
        root = RandomStreams(5)
        a = root.fork("host1").stream("s").random()
        b = root.fork("host2").stream("s").random()
        assert a != b


@given(seed=st.integers(min_value=0, max_value=2**63 - 1), name=st.text(max_size=30))
def test_derivation_is_stable(seed, name):
    """The same (seed, name) always derives the same stream state."""
    first = RandomStreams(seed).stream(name).getrandbits(64)
    second = RandomStreams(seed).stream(name).getrandbits(64)
    assert first == second


@given(
    seed=st.integers(min_value=0, max_value=2**31),
    names=st.lists(st.text(min_size=1, max_size=10), min_size=2, max_size=5, unique=True),
)
def test_stream_creation_order_is_irrelevant(seed, names):
    """Draws from a stream don't depend on which other streams exist."""
    forward = RandomStreams(seed)
    backward = RandomStreams(seed)
    for name in names:
        forward.stream(name)
    for name in reversed(names):
        backward.stream(name)
    for name in names:
        assert forward.stream(name).random() == backward.stream(name).random()
