"""Edge-case behaviour of the TCP state machine."""

import pytest

from repro.tcp import TcpConfig, TcpState
from repro.testing import TwoHostTestbed, request_response

RTT = 0.100


class TestSimultaneousAndOddCloses:
    def test_simultaneous_close(self, testbed):
        sock = testbed.client.connect(testbed.server.address, 80)
        testbed.sim.run(until=1.0)
        server_sock = testbed.server.sockets()[0]
        # Both sides close within the same instant.
        sock.close()
        server_sock.close()
        testbed.sim.run(until=3.0)
        assert sock.is_closed
        assert server_sock.is_closed

    def test_close_is_idempotent(self, testbed):
        sock = testbed.client.connect(testbed.server.address, 80)
        testbed.sim.run(until=1.0)
        sock.close()
        sock.close()  # second close must not emit a second FIN
        testbed.sim.run(until=2.0)
        # Half-close: our FIN is acked, the peer has not closed yet.
        assert sock.state is TcpState.FIN_WAIT_2
        server_sock = testbed.server.sockets()[0]
        server_sock.close()
        testbed.sim.run(until=3.0)
        assert sock.is_closed
        assert server_sock.is_closed

    def test_abort_after_close_is_noop(self, testbed):
        sock = testbed.client.connect(testbed.server.address, 80)
        testbed.sim.run(until=1.0)
        sock.close()
        testbed.sim.run(until=2.0)
        sock.abort()
        assert sock.is_closed

    def test_vanish_notifies_owner(self, testbed):
        closed = []
        sock = testbed.client.connect(
            testbed.server.address, 80, on_closed=lambda s: closed.append(s)
        )
        testbed.sim.run(until=1.0)
        sock.vanish()
        assert closed == [sock]

    def test_close_during_handshake_leaves_no_orphan(self, testbed):
        sock = testbed.client.connect(testbed.server.address, 80)
        sock.close()  # SYN_SENT
        testbed.sim.run(until=5.0)
        assert testbed.client.socket_count() == 0


class TestDuplicateAndStalePackets:
    def test_duplicate_syn_is_reacknowledged(self, testbed):
        """A retransmitted SYN against an established server socket must
        not create a second connection."""
        from repro.net.packet import Packet
        from repro.tcp.wire import Segment

        sock = testbed.client.connect(testbed.server.address, 80)
        testbed.sim.run(until=1.0)
        assert testbed.server.socket_count() == 1
        dup_syn = Segment(
            src_port=sock.local_port,
            dst_port=80,
            seq=0,
            ack=0,
            syn=True,
            rwnd_bytes=29200,
        )
        testbed.network.send(
            Packet(testbed.client.address, testbed.server.address, 40, dup_syn)
        )
        testbed.sim.run(until=2.0)
        assert testbed.server.socket_count() == 1
        assert sock.is_established

    def test_stale_ack_beyond_snd_nxt_ignored(self, testbed):
        from repro.net.packet import Packet
        from repro.tcp.wire import Segment

        sock = testbed.client.connect(testbed.server.address, 80)
        testbed.sim.run(until=1.0)
        crazy_ack = Segment(
            src_port=80,
            dst_port=sock.local_port,
            seq=1,
            ack=10_000_000,
            is_ack=True,
            rwnd_bytes=29200,
        )
        testbed.network.send(
            Packet(testbed.server.address, testbed.client.address, 40, crazy_ack)
        )
        testbed.sim.run(until=2.0)
        assert sock.is_established
        assert sock.bytes_unacked == 0

    def test_retransmitted_data_does_not_duplicate_message(self):
        """Duplicate in-order data (a spurious retransmission) must not
        re-deliver the application message."""
        from repro.net.loss import LossModel

        class DuplicateEverything(LossModel):
            # Never drops; we emulate dup delivery via retransmission by
            # delaying ACKs instead: simply use a high-latency ACK path so
            # the sender retransmits via RTO while data actually arrived.
            def should_drop(self, rng):
                return False

            def clone(self):
                return DuplicateEverything()

        bed = TwoHostTestbed(rtt=0.100)
        bed.serve_echo()
        # Drop the first response ACK so the server RTOs and re-sends
        # data the client already has.
        dropped = {"count": 0}

        class DropFirstAck(LossModel):
            def should_drop(self, rng):
                dropped["count"] += 1
                return dropped["count"] in (3, 4)

            def clone(self):
                return self

        bed.trunk.forward._loss = DropFirstAck()
        result = request_response(bed, response_bytes=3000, deadline=30.0)
        assert result.completed
        assert result.socket.messages_received == 1


class TestReceiveWindowDynamics:
    def test_advertised_window_grows_with_delivery(self):
        config = TcpConfig(default_initrwnd=12)
        bed = TwoHostTestbed(rtt=RTT, client_config=config, server_config=config)
        bed.serve_echo()
        result = request_response(bed, response_bytes=300_000, deadline=30.0)
        assert result.completed
        # After delivering 300 KB the client advertises far more than the
        # initial 12 segments.
        assert result.socket._adv_wnd_bytes > 12 * 1460 * 2

    def test_rmem_max_caps_window_growth(self):
        config = TcpConfig(default_initrwnd=12, rmem_max_bytes=64 * 1024)
        bed = TwoHostTestbed(rtt=RTT, client_config=config, server_config=config)
        bed.serve_echo()
        result = request_response(bed, response_bytes=500_000, deadline=60.0)
        assert result.completed
        assert result.socket._adv_wnd_bytes <= 64 * 1024

    def test_tiny_receive_window_throttles_sender(self):
        small = TcpConfig(default_initrwnd=2, rmem_max_bytes=4 * 1460)
        big = TcpConfig(default_initrwnd=300)
        bed = TwoHostTestbed(rtt=RTT, client_config=small, server_config=big)
        bed.serve_echo()
        throttled = request_response(bed, response_bytes=50_000, deadline=60.0)
        assert throttled.completed

        roomy_bed = TwoHostTestbed(rtt=RTT, client_config=big, server_config=big)
        roomy_bed.serve_echo()
        roomy = request_response(roomy_bed, response_bytes=50_000, deadline=60.0)
        assert roomy.total_time < throttled.total_time


class TestIdleRestartInteractions:
    def test_restart_does_not_fire_mid_transfer(self):
        """Continuous transfers never trigger the idle restart."""
        config = TcpConfig(default_initrwnd=300, slow_start_after_idle=True)
        bed = TwoHostTestbed(rtt=RTT, client_config=config, server_config=config)
        bed.serve_echo()
        request_response(bed, response_bytes=2_000_000, deadline=60.0)
        sender = bed.server.sockets()[0]
        # The window reflects uninterrupted growth, not a restart at 10.
        assert sender.cc.cwnd_segments > 100

    def test_restart_preserves_ssthresh(self):
        """The idle restart collapses cwnd but keeps ssthresh, so regrowth
        is slow-start up to the old operating point."""
        config = TcpConfig(default_initrwnd=300, slow_start_after_idle=True)
        bed = TwoHostTestbed(rtt=RTT, client_config=config, server_config=config)
        bed.serve_echo()
        first = request_response(bed, response_bytes=1_000_000, deadline=60.0)
        bed.sim.run(until=bed.sim.now + 10.0)
        server_sock = bed.server.sockets()[0]
        ssthresh_before = server_sock.cc.ssthresh
        first.socket.send_message(("get", 50_000), 200)
        bed.sim.run(until=bed.sim.now + 5.0)
        assert server_sock.cc.ssthresh == ssthresh_before


@pytest.fixture
def testbed():
    bed = TwoHostTestbed(rtt=RTT)
    bed.serve_echo()
    return bed
