"""Property-based tests of end-to-end TCP invariants.

Whatever the loss pattern, the transfer either delivers every byte in
order exactly once, or fails loudly — never silently corrupts.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.net import BernoulliLoss
from repro.tcp import TcpConfig
from repro.testing import TwoHostTestbed, request_response

FAST_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@FAST_SETTINGS
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    loss=st.floats(min_value=0.0, max_value=0.05),
    size=st.integers(min_value=1, max_value=300_000),
)
def test_transfer_delivers_exact_byte_count(seed, loss, size):
    bed = TwoHostTestbed(
        rtt=0.060,
        loss_model=BernoulliLoss(loss),
        seed=seed,
        client_config=TcpConfig(default_initrwnd=300),
        server_config=TcpConfig(default_initrwnd=300),
    )
    bed.serve_echo()
    # Generous deadline: at the top of the loss range, RTO backoff on a
    # small window can legitimately stretch into minutes of sim time.
    result = request_response(bed, response_bytes=size, deadline=900.0)
    assert result.completed
    assert result.socket.bytes_received == size
    assert result.socket.messages_received == 1


@FAST_SETTINGS
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    initcwnd=st.integers(min_value=1, max_value=300),
    size=st.integers(min_value=1, max_value=200_000),
)
def test_any_initcwnd_is_safe(seed, initcwnd, size):
    """No initial window choice can break correctness — only timing."""
    bed = TwoHostTestbed(
        rtt=0.050,
        seed=seed,
        client_config=TcpConfig(default_initrwnd=400),
        server_config=TcpConfig(default_initrwnd=400),
    )
    bed.serve_echo()
    bed.server.ip.route_replace("10.0.0.0/24", initcwnd=initcwnd)
    result = request_response(bed, response_bytes=size, deadline=120.0)
    assert result.completed
    assert result.socket.bytes_received == size


@FAST_SETTINGS
@given(
    sizes=st.lists(
        st.integers(min_value=1, max_value=60_000), min_size=1, max_size=6
    )
)
def test_messages_arrive_in_order(sizes):
    """Multiple messages on one connection arrive exactly in send order."""
    bed = TwoHostTestbed(rtt=0.040)
    received = []

    def server_on_message(sock, payload, size):
        received.append(payload)

    bed.server.listen(
        7000, on_accept=lambda s: setattr(s, "on_message", server_on_message)
    )

    def on_established(sock):
        for index, size in enumerate(sizes):
            sock.send_message(index, size)

    bed.client.connect(bed.server.address, 7000, on_established=on_established)
    bed.sim.run(until=60.0)
    assert received == list(range(len(sizes)))


@FAST_SETTINGS
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    loss=st.floats(min_value=0.0, max_value=0.05),
)
def test_larger_initcwnd_never_slower_on_clean_path(seed, loss):
    """On the same path and seed, IW100 never loses to IW10 by more than
    noise (with zero loss it must be strictly at least as fast)."""
    def run_with(iw: int) -> float:
        bed = TwoHostTestbed(
            rtt=0.080,
            seed=seed,
            loss_model=BernoulliLoss(loss),
            client_config=TcpConfig(default_initrwnd=300),
            server_config=TcpConfig(default_initrwnd=300),
        )
        bed.serve_echo()
        bed.server.ip.route_replace("10.0.0.0/24", initcwnd=iw)
        result = request_response(bed, response_bytes=100_000, deadline=300.0)
        assert result.completed
        return result.total_time

    slow, fast = run_with(10), run_with(100)
    if loss == 0.0:
        assert fast <= slow + 1e-9
