"""Unit tests for the RFC 6298 RTT estimator."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tcp import RttEstimator


class TestInitialState:
    def test_initial_rto_before_samples(self):
        assert RttEstimator(initial_rto=1.0).rto == 1.0

    def test_srtt_none_before_samples(self):
        assert RttEstimator().srtt is None

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            RttEstimator(min_rto=0.0)
        with pytest.raises(ValueError):
            RttEstimator(min_rto=2.0, max_rto=1.0)


class TestSampling:
    def test_first_sample_initializes(self):
        est = RttEstimator()
        est.add_sample(0.100)
        assert est.srtt == pytest.approx(0.100)
        assert est.rttvar == pytest.approx(0.050)

    def test_rto_after_first_sample(self):
        est = RttEstimator(min_rto=0.0001)
        est.add_sample(0.100)
        # srtt + 4*rttvar = 0.1 + 0.2
        assert est.rto == pytest.approx(0.300)

    def test_min_rto_floor_applies(self):
        est = RttEstimator(min_rto=0.200)
        est.add_sample(0.010)
        assert est.rto >= 0.200

    def test_steady_samples_converge(self):
        est = RttEstimator(min_rto=0.001)
        for _ in range(100):
            est.add_sample(0.080)
        assert est.srtt == pytest.approx(0.080, rel=1e-3)
        assert est.rttvar == pytest.approx(0.0, abs=1e-3)

    def test_variance_reacts_to_jitter(self):
        est = RttEstimator()
        est.add_sample(0.100)
        for _ in range(10):
            est.add_sample(0.100)
        settled = est.rttvar
        est.add_sample(0.500)
        assert est.rttvar > settled

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            RttEstimator().add_sample(-0.1)

    def test_sample_count(self):
        est = RttEstimator()
        est.add_sample(0.1)
        est.add_sample(0.1)
        assert est.samples == 2


class TestBackoff:
    def test_backoff_doubles_rto(self):
        est = RttEstimator(min_rto=0.2)
        est.add_sample(0.100)
        base = est.rto
        est.back_off()
        assert est.rto == pytest.approx(2 * base)
        est.back_off()
        assert est.rto == pytest.approx(4 * base)

    def test_backoff_capped_at_max(self):
        est = RttEstimator(max_rto=5.0)
        est.add_sample(1.0)
        for _ in range(20):
            est.back_off()
        assert est.rto == 5.0

    def test_new_sample_clears_backoff(self):
        est = RttEstimator(min_rto=0.001)
        est.add_sample(0.100)
        base = est.rto
        est.back_off()
        est.add_sample(0.100)
        assert est.rto == pytest.approx(base, rel=0.2)

    def test_reset_backoff(self):
        est = RttEstimator()
        est.add_sample(0.1)
        base = est.rto
        est.back_off()
        est.reset_backoff()
        assert est.rto == base


@given(samples=st.lists(st.floats(min_value=1e-4, max_value=5.0), min_size=1, max_size=50))
def test_rto_always_within_bounds(samples):
    est = RttEstimator(min_rto=0.2, max_rto=120.0)
    for sample in samples:
        est.add_sample(sample)
        assert 0.2 <= est.rto <= 120.0


@given(
    samples=st.lists(st.floats(min_value=1e-4, max_value=5.0), min_size=1, max_size=20),
    backoffs=st.integers(min_value=0, max_value=30),
)
def test_backoff_monotone_and_capped(samples, backoffs):
    est = RttEstimator(min_rto=0.2, max_rto=120.0)
    for sample in samples:
        est.add_sample(sample)
    previous = est.rto
    for _ in range(backoffs):
        est.back_off()
        assert est.rto >= previous
        assert est.rto <= 120.0
        previous = est.rto


class TestBackoffSaturation:
    """Regression: 2 ** exponent overflowed float conversion after ~1024
    consecutive timeouts (OverflowError in the rto property)."""

    def test_backoff_far_past_old_overflow_point(self):
        est = RttEstimator()
        for _ in range(5000):
            est.back_off()
        assert est.rto == est._max_rto

    def test_backoff_saturates_at_max_rto(self):
        est = RttEstimator(min_rto=0.2, max_rto=60.0, initial_rto=1.0)
        previous = est.rto
        for _ in range(20):
            est.back_off()
            assert est.rto >= previous
            previous = est.rto
        assert est.rto == 60.0

    def test_sample_after_saturation_clears_backoff(self):
        est = RttEstimator()
        for _ in range(3000):
            est.back_off()
        est.add_sample(0.050)
        assert est.rto < est._max_rto

    def test_clamp_does_not_change_unsaturated_backoff(self):
        est = RttEstimator(min_rto=1.0, max_rto=64.0, initial_rto=1.0)
        est.back_off()
        est.back_off()
        assert est.rto == pytest.approx(4.0)
