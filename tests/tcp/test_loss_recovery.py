"""TCP behaviour under loss: fast retransmit, RTO, data integrity."""

import pytest

from repro.net import BernoulliLoss, GilbertElliottLoss
from repro.tcp import TcpConfig
from repro.testing import TwoHostTestbed, request_response

RTT = 0.100


def lossy_testbed(loss_probability: float, seed: int = 42) -> TwoHostTestbed:
    bed = TwoHostTestbed(
        rtt=RTT,
        loss_model=BernoulliLoss(loss_probability),
        seed=seed,
        client_config=TcpConfig(default_initrwnd=256),
        server_config=TcpConfig(default_initrwnd=256),
    )
    bed.serve_echo()
    return bed


class TestDataIntegrity:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_transfer_completes_despite_loss(self, seed):
        bed = lossy_testbed(0.02, seed=seed)
        result = request_response(bed, response_bytes=200_000, deadline=120.0)
        assert result.completed
        assert result.socket.bytes_received == 200_000

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_transfer_completes_under_heavy_loss(self, seed):
        bed = lossy_testbed(0.10, seed=seed)
        result = request_response(bed, response_bytes=50_000, deadline=300.0)
        assert result.completed

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_transfer_completes_under_bursty_loss(self, seed):
        bed = TwoHostTestbed(
            rtt=RTT,
            loss_model=GilbertElliottLoss(0.01, 0.3, loss_good=0.001, loss_bad=0.3),
            seed=seed,
        )
        bed.serve_echo()
        result = request_response(bed, response_bytes=100_000, deadline=300.0)
        assert result.completed

    def test_loss_costs_time(self):
        clean = TwoHostTestbed(rtt=RTT)
        clean.serve_echo()
        clean_time = request_response(clean, response_bytes=200_000).total_time

        lossy_times = []
        for seed in range(5):
            bed = lossy_testbed(0.05, seed=seed)
            lossy_times.append(
                request_response(bed, response_bytes=200_000, deadline=300.0).total_time
            )
        assert min(lossy_times) >= clean_time
        assert sum(lossy_times) / len(lossy_times) > clean_time * 1.2


class TestRecoveryMechanics:
    def test_fast_retransmit_triggers_on_dupacks(self):
        bed = lossy_testbed(0.03, seed=7)
        request_response(bed, response_bytes=500_000, deadline=300.0)
        server_sock_list = bed.server.sockets()
        assert server_sock_list, "server socket should still be open"
        sender = server_sock_list[0]
        assert sender.fast_retransmits > 0

    def test_retransmissions_counted(self):
        bed = lossy_testbed(0.05, seed=9)
        request_response(bed, response_bytes=300_000, deadline=300.0)
        sender = bed.server.sockets()[0]
        assert sender.segments_retransmitted > 0

    def test_loss_reduces_final_cwnd(self):
        clean = TwoHostTestbed(rtt=RTT)
        clean.serve_echo()
        request_response(clean, response_bytes=500_000, deadline=300.0)
        clean_cwnd = clean.server.sockets()[0].cc.cwnd_segments

        bed = lossy_testbed(0.05, seed=11)
        request_response(bed, response_bytes=500_000, deadline=300.0)
        lossy_cwnd = bed.server.sockets()[0].cc.cwnd_segments
        assert lossy_cwnd < clean_cwnd

    def test_rto_fires_when_whole_window_lost(self):
        """Losing every packet of a flight leaves no dupacks: only the
        retransmission timer can recover."""
        from repro.net.loss import LossModel

        class DropRange(LossModel):
            """Deterministically drop packets ``start``..``end`` (1-based)."""

            def __init__(self, start: int, end: int) -> None:
                self.start, self.end = start, end
                self.count = 0

            def should_drop(self, rng) -> bool:
                self.count += 1
                return self.start <= self.count <= self.end

            def clone(self) -> "DropRange":
                return DropRange(self.start, self.end)

        bed = TwoHostTestbed(rtt=RTT)
        bed.serve_echo()
        # The reverse direction carries the response data.  Packet 1 is the
        # SYN-ACK; packets 2..11 are exactly the IW10 initial data flight —
        # losing all of it produces zero dupacks, forcing an RTO.
        bed.trunk.reverse._loss = DropRange(2, 11)
        result = request_response(bed, response_bytes=200_000, deadline=600.0)
        assert result.completed
        sender_stats = bed.server.sockets()[0]
        assert sender_stats.rtos_fired > 0

    def test_queue_overflow_recovered(self):
        """A burst into a tiny queue loses the tail; TCP must recover."""
        bed = TwoHostTestbed(
            rtt=RTT,
            bandwidth_bps=100e6,
            queue_limit_packets=8,
            client_config=TcpConfig(default_initrwnd=256),
            server_config=TcpConfig(default_initrwnd=256),
        )
        bed.serve_echo()
        bed.server.ip.route_replace("10.0.0.0/24", initcwnd=150)
        result = request_response(bed, response_bytes=400_000, deadline=300.0)
        assert result.completed
        assert bed.trunk.reverse.stats.packets_dropped_queue > 0


class TestHandshakeLoss:
    def test_lost_syn_retried(self):
        bed = TwoHostTestbed(
            rtt=RTT,
            loss_model=GilbertElliottLoss(1.0, 1.0, loss_good=1.0, loss_bad=0.0),
            seed=5,
        )
        # loss_good=1.0 then transitions: first packet (SYN) lost, then the
        # channel oscillates; eventually a retry gets through.
        bed.serve_echo()
        result = request_response(bed, response_bytes=1000, deadline=120.0)
        assert result.completed
        assert result.total_time > 1.0  # paid at least one SYN RTO
