"""Unit tests for congestion-control algorithms."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tcp import Cubic, Reno, make_congestion_control
from repro.tcp.cc import register_congestion_control
from repro.tcp.cc.base import MIN_CWND, CongestionControl

MSS = 1460


class TestFactory:
    def test_builds_reno(self):
        assert isinstance(make_congestion_control("reno", 10, MSS), Reno)

    def test_builds_cubic(self):
        assert isinstance(make_congestion_control("cubic", 10, MSS), Cubic)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown congestion control"):
            make_congestion_control("bbr", 10, MSS)

    def test_custom_registration(self):
        class Custom(Reno):
            name = "custom"

        register_congestion_control("custom", Custom)
        assert isinstance(make_congestion_control("custom", 10, MSS), Custom)

    def test_non_cc_registration_rejected(self):
        with pytest.raises(TypeError):
            register_congestion_control("bad", dict)


class TestCommonBehaviour:
    @pytest.mark.parametrize("algo", ["reno", "cubic"])
    def test_initial_window_respected(self, algo):
        cc = make_congestion_control(algo, 42, MSS)
        assert cc.cwnd_segments == 42
        assert cc.initial_cwnd == 42

    @pytest.mark.parametrize("algo", ["reno", "cubic"])
    def test_starts_in_slow_start(self, algo):
        assert make_congestion_control(algo, 10, MSS).in_slow_start

    @pytest.mark.parametrize("algo", ["reno", "cubic"])
    def test_slow_start_doubles_per_window(self, algo):
        cc = make_congestion_control(algo, 10, MSS)
        cc.on_ack(now=0.0, acked_bytes=10 * MSS, rtt=0.1)
        assert cc.cwnd == pytest.approx(20.0)

    @pytest.mark.parametrize("algo", ["reno", "cubic"])
    def test_rto_collapses_to_one_segment(self, algo):
        cc = make_congestion_control(algo, 100, MSS)
        cc.on_retransmit_timeout(now=1.0)
        assert cc.cwnd == 1.0
        assert cc.ssthresh < math.inf

    @pytest.mark.parametrize("algo", ["reno", "cubic"])
    def test_cwnd_segments_never_below_one(self, algo):
        cc = make_congestion_control(algo, 1, MSS)
        cc.on_retransmit_timeout(now=0.0)
        assert cc.cwnd_segments >= 1

    @pytest.mark.parametrize("algo", ["reno", "cubic"])
    def test_invalid_initial_window_rejected(self, algo):
        with pytest.raises(ValueError):
            make_congestion_control(algo, 0, MSS)

    def test_invalid_mss_rejected(self):
        with pytest.raises(ValueError):
            Reno(initial_cwnd=10, mss=0)


class TestReno:
    def test_loss_halves_window(self):
        cc = Reno(initial_cwnd=10, mss=MSS)
        cc.cwnd = 40.0
        cc.on_loss_event(now=1.0)
        assert cc.ssthresh == pytest.approx(20.0)
        cc.after_recovery()
        assert cc.cwnd == pytest.approx(20.0)

    def test_ssthresh_floor(self):
        cc = Reno(initial_cwnd=2, mss=MSS)
        cc.cwnd = 2.0
        cc.on_loss_event(now=1.0)
        assert cc.ssthresh == MIN_CWND

    def test_congestion_avoidance_linear_growth(self):
        cc = Reno(initial_cwnd=10, mss=MSS)
        cc.cwnd = 20.0
        cc.ssthresh = 10.0  # force congestion avoidance
        for _ in range(20):  # one full window of acks
            cc.on_ack(now=0.0, acked_bytes=MSS, rtt=0.1)
        assert cc.cwnd == pytest.approx(21.0, rel=0.01)

    def test_slow_start_exits_at_ssthresh(self):
        cc = Reno(initial_cwnd=10, mss=MSS)
        cc.ssthresh = 15.0
        cc.on_ack(now=0.0, acked_bytes=10 * MSS, rtt=0.1)
        assert cc.cwnd == pytest.approx(15.0)
        assert not cc.in_slow_start


class TestCubic:
    def test_loss_applies_beta(self):
        cc = Cubic(initial_cwnd=10, mss=MSS)
        cc.cwnd = 100.0
        cc.on_loss_event(now=1.0)
        assert cc.ssthresh == pytest.approx(70.0)

    def test_fast_convergence_lowers_wmax(self):
        cc = Cubic(initial_cwnd=10, mss=MSS)
        cc.cwnd = 100.0
        cc.on_loss_event(now=1.0)
        first_wmax = cc._w_max
        cc.cwnd = 60.0  # lost again before regaining the peak
        cc.on_loss_event(now=2.0)
        assert cc._w_max < first_wmax

    def test_concave_growth_toward_wmax(self):
        """After a loss, cwnd approaches the previous maximum and plateaus."""
        cc = Cubic(initial_cwnd=10, mss=MSS)
        cc.cwnd = 100.0
        cc.on_loss_event(now=0.0)
        cc.after_recovery()
        start = cc.cwnd
        now = 0.0
        for _ in range(200):
            now += 0.01
            cc.on_ack(now=now, acked_bytes=MSS, rtt=0.01)
        assert cc.cwnd > start
        # Should be pulled toward w_max=100, not explode past it quickly.
        assert cc.cwnd < 130.0

    def test_growth_accelerates_past_plateau(self):
        """Beyond K the cubic function turns convex (probing region)."""
        cc = Cubic(initial_cwnd=10, mss=MSS)
        cc.cwnd = 50.0
        cc.on_loss_event(now=0.0)
        cc.after_recovery()
        now, window_history = 0.0, []
        for _ in range(4000):
            now += 0.01
            cc.on_ack(now=now, acked_bytes=MSS, rtt=0.01)
            window_history.append(cc.cwnd)
        assert window_history[-1] > 50.0  # eventually exceeds old peak


@given(
    algo=st.sampled_from(["reno", "cubic"]),
    initial=st.integers(min_value=1, max_value=300),
    acks=st.lists(st.integers(min_value=1, max_value=10 * MSS), max_size=50),
)
def test_window_stays_positive_and_finite(algo, initial, acks):
    cc = make_congestion_control(algo, initial, MSS)
    now = 0.0
    for i, acked in enumerate(acks):
        now += 0.01
        cc.on_ack(now=now, acked_bytes=acked, rtt=0.01)
        if i % 7 == 3:
            cc.on_loss_event(now=now)
            cc.after_recovery()
        if i % 11 == 5:
            cc.on_retransmit_timeout(now=now)
        assert cc.cwnd_segments >= 1
        assert math.isfinite(cc.cwnd)
