"""Tests for TCP Vegas (delay-based congestion control)."""

import pytest

from repro.tcp import TcpConfig, make_congestion_control
from repro.tcp.cc import Vegas
from repro.tcp.cc.base import MIN_CWND
from repro.testing import TwoHostTestbed, request_response

MSS = 1460


class TestVegasUnit:
    def test_registered_in_factory(self):
        assert isinstance(make_congestion_control("vegas", 10, MSS), Vegas)

    def test_slow_start_like_others(self):
        cc = Vegas(initial_cwnd=10, mss=MSS)
        cc.on_ack(now=0.0, acked_bytes=10 * MSS, rtt=0.1)
        assert cc.cwnd == pytest.approx(20.0)

    def test_base_rtt_tracks_minimum(self):
        cc = Vegas(initial_cwnd=10, mss=MSS)
        cc.on_ack(now=0.0, acked_bytes=MSS, rtt=0.10)
        cc.on_ack(now=0.1, acked_bytes=MSS, rtt=0.08)
        cc.on_ack(now=0.2, acked_bytes=MSS, rtt=0.12)
        assert cc.base_rtt == pytest.approx(0.08)

    def test_grows_when_queue_is_empty(self):
        cc = Vegas(initial_cwnd=10, mss=MSS)
        cc.ssthresh = 10.0  # force congestion avoidance
        cc.on_ack(now=0.0, acked_bytes=MSS, rtt=0.100)
        start = cc.cwnd
        # RTT equals base RTT: zero queued segments -> below alpha -> grow.
        for _ in range(20):
            cc.on_ack(now=0.1, acked_bytes=MSS, rtt=0.100)
        assert cc.cwnd > start

    def test_shrinks_when_queueing_detected(self):
        cc = Vegas(initial_cwnd=50, mss=MSS)
        cc.ssthresh = 10.0
        cc.on_ack(now=0.0, acked_bytes=MSS, rtt=0.100)  # base = 100 ms
        start = cc.cwnd
        # RTT doubled: surplus = cwnd/2 segments >> beta -> back off.
        for _ in range(20):
            cc.on_ack(now=0.1, acked_bytes=MSS, rtt=0.200)
        assert cc.cwnd < start
        assert cc.cwnd >= MIN_CWND

    def test_holds_inside_band(self):
        cc = Vegas(initial_cwnd=30, mss=MSS)
        cc.ssthresh = 10.0
        cc.on_ack(now=0.0, acked_bytes=MSS, rtt=0.100)
        # Choose an RTT giving ~3 queued segments (inside [2, 4]).
        cwnd = cc.cwnd
        rtt = 0.100 * cwnd / (cwnd - 3.0)
        before = cc.cwnd
        for _ in range(10):
            cc.on_ack(now=0.1, acked_bytes=MSS, rtt=rtt)
        assert cc.cwnd == pytest.approx(before, abs=0.5)

    def test_loss_halves_ssthresh(self):
        cc = Vegas(initial_cwnd=10, mss=MSS)
        cc.cwnd = 40.0
        cc.on_loss_event(now=1.0)
        assert cc.ssthresh == pytest.approx(20.0)


class TestVegasEndToEnd:
    def test_transfer_completes_under_vegas(self):
        config = TcpConfig(congestion_control="vegas", default_initrwnd=300)
        bed = TwoHostTestbed(rtt=0.080, client_config=config, server_config=config)
        bed.serve_echo()
        result = request_response(bed, response_bytes=500_000)
        assert result.completed
        assert result.socket.bytes_received == 500_000

    def test_riptide_initcwnd_applies_under_vegas(self):
        """Riptide 'is applicable to any TCP protocol that employs slow
        start' — the learned window jump-starts Vegas too."""
        config = TcpConfig(congestion_control="vegas", default_initrwnd=300)
        slow = TwoHostTestbed(rtt=0.100, client_config=config, server_config=config)
        slow.serve_echo()
        slow_time = request_response(slow, response_bytes=100_000).total_time

        fast = TwoHostTestbed(rtt=0.100, client_config=config, server_config=config)
        fast.serve_echo()
        fast.server.ip.route_replace("10.0.0.0/24", initcwnd=100)
        fast_time = request_response(fast, response_bytes=100_000).total_time
        assert fast_time < slow_time
