"""Tests for optional TCP features: delayed ACKs, slow-start-after-idle,
server close-on-FIN."""

import pytest

from repro.tcp import TcpConfig
from repro.testing import TwoHostTestbed, request_response

RTT = 0.100


class TestDelayedAck:
    def make_bed(self, delayed: bool) -> TwoHostTestbed:
        config = TcpConfig(delayed_ack=delayed, default_initrwnd=300)
        bed = TwoHostTestbed(rtt=RTT, client_config=config, server_config=config)
        bed.serve_echo()
        return bed

    def test_transfer_completes_with_delayed_acks(self):
        bed = self.make_bed(delayed=True)
        result = request_response(bed, response_bytes=100_000)
        assert result.completed
        assert result.socket.bytes_received == 100_000

    def test_delayed_acks_send_fewer_acks(self):
        eager = self.make_bed(delayed=False)
        request_response(eager, response_bytes=200_000)
        eager_acks = eager.client.sockets()[0].segments_sent

        lazy = self.make_bed(delayed=True)
        request_response(lazy, response_bytes=200_000)
        lazy_acks = lazy.client.sockets()[0].segments_sent
        assert lazy_acks < eager_acks

    def test_single_segment_acked_via_timer(self):
        """One lone data segment still gets acknowledged (40 ms timer)."""
        bed = self.make_bed(delayed=True)
        result = request_response(bed, response_bytes=500)
        assert result.completed
        # The server's data must be acked eventually or it would RTO.
        bed.sim.run(until=bed.sim.now + 2.0)
        server_sock = bed.server.sockets()[0]
        assert server_sock.bytes_unacked == 0
        assert server_sock.rtos_fired == 0


class TestSlowStartAfterIdle:
    def run_second_transfer(self, idle_restart: bool) -> float:
        config = TcpConfig(slow_start_after_idle=idle_restart, default_initrwnd=300)
        bed = TwoHostTestbed(rtt=RTT, client_config=config, server_config=config)
        bed.serve_echo()
        # First transfer grows the server window far beyond IW10.
        first = request_response(bed, response_bytes=1_000_000)
        assert first.completed
        # Idle far longer than the RTO, then fetch again on the same
        # connection.
        bed.sim.run(until=bed.sim.now + 30.0)
        times = []
        first.socket.send_message(("get", 100_000), 200)
        first.socket.on_message = lambda s, payload, size: times.append(
            bed.sim.now
        )
        start = bed.sim.now
        bed.sim.run(until=bed.sim.now + 10.0)
        assert times, "second transfer did not complete"
        return times[0] - start

    def test_idle_restart_collapses_window(self):
        with_restart = self.run_second_transfer(idle_restart=True)
        without_restart = self.run_second_transfer(idle_restart=False)
        # With RFC 2861 restart the 100 KB needs slow-start rounds again;
        # without it the grown window covers it in one round.
        assert without_restart < with_restart
        assert with_restart == pytest.approx(3 * RTT, rel=0.15)
        assert without_restart == pytest.approx(RTT, rel=0.15)

    def test_restart_uses_route_initcwnd(self):
        """The restart window is the *route-resolved* initial window, so
        a Riptide-installed initcwnd also accelerates idle restarts."""
        config = TcpConfig(slow_start_after_idle=True, default_initrwnd=300)
        bed = TwoHostTestbed(rtt=RTT, client_config=config, server_config=config)
        bed.serve_echo()
        bed.server.ip.route_replace("10.0.0.0/24", initcwnd=100)
        first = request_response(bed, response_bytes=1_000_000)
        bed.sim.run(until=bed.sim.now + 30.0)
        times = []
        first.socket.on_message = lambda s, payload, size: times.append(bed.sim.now)
        start = bed.sim.now
        first.socket.send_message(("get", 100_000), 200)
        bed.sim.run(until=bed.sim.now + 10.0)
        # Restarting at initcwnd=100 covers 100 KB in a single round.
        assert times[0] - start == pytest.approx(RTT, rel=0.15)


class TestCloseOnPeerFin:
    def test_server_socket_closes_after_client_fin(self):
        bed = TwoHostTestbed(rtt=RTT)
        bed.serve_echo()
        from repro.cdn.transfer import TransferClient, TransferServer

        server_host = bed.server
        server_host.stop_listening(80)
        TransferServer(server_host, port=80)
        client = TransferClient(bed.client, port=80)
        client.fetch(server_host.address, 10_000)
        bed.sim.run(until=bed.sim.now + 2.0)
        assert server_host.socket_count() == 1
        client.close_idle_connections()
        bed.sim.run(until=bed.sim.now + 2.0)
        assert server_host.socket_count() == 0
        assert bed.client.socket_count() == 0

    def test_flag_defaults_off(self):
        bed = TwoHostTestbed(rtt=RTT)
        bed.serve_echo()
        sock = bed.client.connect(bed.server.address, 80)
        bed.sim.run(until=1.0)
        server_sock = bed.server.sockets()[0]
        assert not server_sock.close_on_peer_fin
        sock.close()
        bed.sim.run(until=2.0)
        # Without the flag the server lingers in CLOSE_WAIT.
        from repro.tcp import TcpState

        assert server_sock.state is TcpState.CLOSE_WAIT
