"""Tests for selective acknowledgements (RFC 2018-style)."""

import pytest

from repro.net.loss import BernoulliLoss, LossModel
from repro.tcp import TcpConfig
from repro.testing import TwoHostTestbed, request_response

RTT = 0.100


class DropPackets(LossModel):
    """Deterministically drop a chosen set of packet ordinals (1-based)."""

    def __init__(self, ordinals: set[int]) -> None:
        self.ordinals = set(ordinals)
        self.count = 0

    def should_drop(self, rng) -> bool:
        self.count += 1
        return self.count in self.ordinals

    def clone(self) -> "DropPackets":
        return DropPackets(self.ordinals)


def sack_bed(sack: bool, reverse_drops: set[int] | None = None) -> TwoHostTestbed:
    config = TcpConfig(sack=sack, default_initrwnd=300)
    bed = TwoHostTestbed(rtt=RTT, client_config=config, server_config=config)
    bed.serve_echo()
    if reverse_drops:
        bed.trunk.reverse._loss = DropPackets(reverse_drops)
    return bed


class TestSackBlocks:
    def test_no_blocks_without_holes(self):
        bed = sack_bed(sack=True)
        result = request_response(bed, response_bytes=50_000)
        assert result.completed

    def test_transfer_completes_with_sack(self):
        bed = sack_bed(sack=True)
        result = request_response(bed, response_bytes=300_000)
        assert result.completed
        assert result.socket.bytes_received == 300_000

    def test_receiver_advertises_holes(self):
        # Drop one data packet mid-flight (reverse link carries data;
        # packet 1 is the SYN-ACK, packets 2.. are the response flight).
        bed = sack_bed(sack=True, reverse_drops={4})
        result = request_response(bed, response_bytes=100_000, deadline=30.0)
        assert result.completed
        # The sender saw SACK-carrying dupacks and recovered quickly.
        sender = bed.server.sockets()[0]
        assert sender.fast_retransmits >= 1
        assert sender.rtos_fired == 0


class TestSackRecovery:
    def multi_loss_run(self, sack: bool):
        """Drop two separated packets of the initial flight."""
        bed = sack_bed(sack=sack, reverse_drops={3, 7})
        result = request_response(bed, response_bytes=150_000, deadline=60.0)
        assert result.completed
        sender = bed.server.sockets()[0]
        return result.total_time, sender

    def test_multi_loss_recovers_without_rto_under_sack(self):
        time_sack, sender = self.multi_loss_run(sack=True)
        assert sender.rtos_fired == 0

    def test_sack_no_slower_than_newreno_on_multi_loss(self):
        time_sack, _ = self.multi_loss_run(sack=True)
        time_newreno, _ = self.multi_loss_run(sack=False)
        assert time_sack <= time_newreno + 1e-9

    def test_sack_retransmits_only_the_holes(self):
        _, sender = self.multi_loss_run(sack=True)
        # Exactly the two dropped data segments need retransmission.
        assert sender.segments_retransmitted == 2

    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_random_loss_data_integrity_with_sack(self, seed):
        config = TcpConfig(sack=True, default_initrwnd=300)
        bed = TwoHostTestbed(
            rtt=RTT,
            loss_model=BernoulliLoss(0.03),
            seed=seed,
            client_config=config,
            server_config=config,
        )
        bed.serve_echo()
        result = request_response(bed, response_bytes=250_000, deadline=120.0)
        assert result.completed
        assert result.socket.bytes_received == 250_000

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_sack_reduces_time_under_loss(self, seed):
        def run(sack: bool) -> float:
            config = TcpConfig(sack=sack, default_initrwnd=300)
            bed = TwoHostTestbed(
                rtt=RTT,
                loss_model=BernoulliLoss(0.02),
                seed=seed,
                client_config=config,
                server_config=config,
            )
            bed.serve_echo()
            result = request_response(bed, response_bytes=400_000, deadline=300.0)
            assert result.completed
            return result.total_time

        # SACK should rarely lose; allow a small tolerance for seeds
        # where loss happens to hit the SACK run harder.
        assert run(True) <= run(False) * 1.25


class TestSackWithRiptide:
    def test_learned_initcwnd_composes_with_sack(self):
        config = TcpConfig(sack=True, default_initrwnd=300)
        bed = TwoHostTestbed(rtt=RTT, client_config=config, server_config=config)
        bed.serve_echo()
        bed.server.ip.route_replace("10.0.0.0/24", initcwnd=100)
        result = request_response(bed, response_bytes=100_000)
        assert result.total_time == pytest.approx(2 * RTT, rel=0.1)
