"""Integration tests for the TCP socket over a lossless fabric."""

import pytest

from repro.tcp import TcpConfig, TcpState
from repro.tcp.errors import TcpError, TcpStateError
from repro.testing import TwoHostTestbed, request_response

RTT = 0.100
MSS = 1460


class TestHandshake:
    def test_connect_establishes_both_sides(self, testbed):
        established = []
        sock = testbed.client.connect(
            testbed.server.address, 80, on_established=lambda s: established.append(s)
        )
        testbed.sim.run(until=1.0)
        assert sock.is_established
        assert established == [sock]
        server_socks = [s for s in testbed.server.sockets() if s.local_port == 80]
        assert len(server_socks) == 1
        assert server_socks[0].is_established

    def test_handshake_costs_one_rtt(self, testbed):
        when = []
        testbed.client.connect(
            testbed.server.address, 80, on_established=lambda s: when.append(testbed.sim.now)
        )
        testbed.sim.run(until=1.0)
        assert when[0] == pytest.approx(RTT, rel=0.05)

    def test_client_flag_set_correctly(self, testbed):
        sock = testbed.client.connect(testbed.server.address, 80)
        testbed.sim.run(until=1.0)
        assert sock.is_client
        server_sock = testbed.server.sockets()[0]
        assert not server_sock.is_client

    def test_syn_to_closed_port_times_out(self):
        bed = TwoHostTestbed(rtt=RTT)
        errors = []
        sock = bed.client.connect(
            bed.server.address, 9999, on_error=lambda s, reason: errors.append(reason)
        )
        bed.sim.run(until=300.0)
        assert sock.is_closed
        assert errors and "timeout" in errors[0]

    def test_double_connect_rejected(self, testbed):
        sock = testbed.client.connect(testbed.server.address, 80)
        testbed.sim.run(until=1.0)
        with pytest.raises(TcpStateError):
            sock.connect()

    def test_duplicate_listen_rejected(self, testbed):
        with pytest.raises(TcpError):
            testbed.server.listen(80)


class TestTransfer:
    def test_small_message_round_trip(self, testbed):
        result = request_response(testbed, response_bytes=1000)
        assert result.completed
        # Handshake (1 RTT) + request/response (1 RTT) plus serialization.
        assert result.total_time == pytest.approx(2 * RTT, rel=0.1)

    def test_100kb_takes_four_data_rounds_at_iw10(self, testbed):
        result = request_response(testbed, response_bytes=100_000)
        # 69 segments from IW10 need slow-start rounds of 10/20/40/69.
        # Handshake = 1 RTT, request + first wave = 1 RTT, then 2 more
        # waves: 4 RTTs in total.
        assert result.total_time == pytest.approx(4 * RTT, rel=0.1)

    def test_large_initcwnd_transfers_in_one_round(self):
        bed = TwoHostTestbed(rtt=RTT, server_config=TcpConfig(default_initrwnd=256))
        bed.serve_echo()
        bed.server.ip.route_replace("10.0.0.0/24", initcwnd=100)
        bed.client.config = TcpConfig(default_initrwnd=256)
        result = request_response(bed, response_bytes=100_000)
        assert result.total_time == pytest.approx(2 * RTT, rel=0.1)

    def test_multiple_messages_on_one_connection(self, testbed):
        received = []
        sock = testbed.client.connect(
            testbed.server.address,
            80,
            on_established=lambda s: s.send_message(("get", 5000), 200),
            on_message=lambda s, payload, size: received.append(size),
        )
        testbed.sim.run(until=1.0)
        sock.send_message(("get", 9000), 200)
        testbed.sim.run(until=2.0)
        assert received == [5000, 9000]

    def test_reused_connection_skips_handshake(self, testbed):
        completions = []
        sock = testbed.client.connect(
            testbed.server.address,
            80,
            on_established=lambda s: s.send_message(("get", 1000), 200),
            on_message=lambda s, payload, size: completions.append(testbed.sim.now),
        )
        testbed.sim.run(until=1.0)
        start = testbed.sim.now
        sock.send_message(("get", 1000), 200)
        testbed.sim.run(until=2.0)
        assert completions[1] - start == pytest.approx(RTT, rel=0.1)

    def test_bidirectional_transfer(self, testbed):
        """Both sides can stream data simultaneously."""
        client_got, server_got = [], []

        def server_on_message(sock, payload, size):
            server_got.append(size)
            sock.send_message("reply", 30_000)

        testbed.server.stop_listening(80)
        testbed.server.listen(
            8080, on_accept=lambda s: setattr(s, "on_message", server_on_message)
        )
        testbed.client.connect(
            testbed.server.address,
            8080,
            on_established=lambda s: s.send_message("req", 30_000),
            on_message=lambda s, payload, size: client_got.append(size),
        )
        testbed.sim.run(until=5.0)
        assert server_got == [30_000]
        assert client_got == [30_000]

    def test_message_sizes_validated(self, testbed):
        sock = testbed.client.connect(testbed.server.address, 80)
        testbed.sim.run(until=1.0)
        with pytest.raises(ValueError):
            sock.send_message("bad", 0)

    def test_byte_counters_track_transfer(self, testbed):
        result = request_response(testbed, response_bytes=50_000)
        assert result.socket.bytes_received == 50_000
        server_sock = testbed.server.sockets()[0]
        assert server_sock.bytes_acked == 50_000

    def test_transfer_exact_window_boundary(self, testbed):
        # Exactly 10 segments: fits the default initial window.
        result = request_response(testbed, response_bytes=10 * MSS)
        assert result.total_time == pytest.approx(2 * RTT, rel=0.1)

    def test_transfer_one_byte_over_window(self, testbed):
        bed_result = request_response(testbed, response_bytes=10 * MSS + 1)
        assert bed_result.total_time == pytest.approx(3 * RTT, rel=0.1)


class TestInitialWindows:
    def test_route_initcwnd_applies_to_server_socket(self, testbed):
        testbed.server.ip.route_replace("10.0.0.0/24", initcwnd=77)
        request_response(testbed, response_bytes=1000)
        server_sock_stats = testbed.server.ss.tcp_info(established_only=False)
        # The connection may have closed; check via the initcwnd recorded.
        socks = testbed.server.sockets()
        assert any(s.cc.initial_cwnd == 77 for s in socks)

    def test_default_initcwnd_without_route(self, testbed):
        sock = testbed.client.connect(testbed.server.address, 80)
        assert sock.cc.initial_cwnd == 10

    def test_more_specific_route_wins(self, testbed):
        testbed.server.ip.route_replace("10.0.0.0/24", initcwnd=50)
        testbed.server.ip.route_replace("10.0.0.1/32", initcwnd=90)
        assert testbed.server.initcwnd_for(testbed.client.address) == 90

    def test_initrwnd_limits_first_burst(self):
        """Section III-C: a large initcwnd is useless if the receiver's
        initial window cannot absorb the burst."""
        capped = TwoHostTestbed(
            rtt=RTT,
            client_config=TcpConfig(default_initrwnd=10),
            server_config=TcpConfig(default_initrwnd=10),
        )
        capped.serve_echo()
        capped.server.ip.route_replace("10.0.0.0/24", initcwnd=100)
        capped_result = request_response(capped, response_bytes=100_000)

        roomy = TwoHostTestbed(
            rtt=RTT,
            client_config=TcpConfig(default_initrwnd=256),
            server_config=TcpConfig(default_initrwnd=256),
        )
        roomy.serve_echo()
        roomy.server.ip.route_replace("10.0.0.0/24", initcwnd=100)
        roomy_result = request_response(roomy, response_bytes=100_000)

        assert roomy_result.total_time < capped_result.total_time


class TestClose:
    def test_orderly_close_tears_down_both_sides(self, testbed):
        closed = []
        sock = testbed.client.connect(
            testbed.server.address, 80, on_closed=lambda s: closed.append("client")
        )
        testbed.sim.run(until=1.0)
        server_sock = testbed.server.sockets()[0]
        sock.close()
        testbed.sim.run(until=2.0)
        server_sock.close()
        testbed.sim.run(until=3.0)
        assert sock.is_closed
        assert server_sock.is_closed
        assert testbed.client.socket_count() == 0
        assert testbed.server.socket_count() == 0

    def test_close_flushes_pending_data(self, testbed):
        received = []
        sock = testbed.client.connect(
            testbed.server.address,
            80,
            on_established=lambda s: s.send_message(("get", 40_000), 200),
            on_message=lambda s, payload, size: received.append(size),
        )
        testbed.sim.run(until=0.15)  # mid-transfer
        testbed.sim.run(until=5.0)
        assert received == [40_000]

    def test_send_after_close_rejected(self, testbed):
        sock = testbed.client.connect(testbed.server.address, 80)
        testbed.sim.run(until=1.0)
        sock.close()
        with pytest.raises(TcpStateError):
            sock.send_message("x", 100)

    def test_abort_resets_peer(self, testbed):
        errors = []
        sock = testbed.client.connect(testbed.server.address, 80)
        testbed.sim.run(until=1.0)
        server_sock = testbed.server.sockets()[0]
        server_sock.on_error = lambda s, reason: errors.append(reason)
        sock.abort()
        testbed.sim.run(until=2.0)
        assert sock.is_closed
        assert server_sock.is_closed
        assert errors and "reset" in errors[0]

    def test_close_before_establish(self, testbed):
        sock = testbed.client.connect(testbed.server.address, 80)
        sock.close()
        assert sock.is_closed

    def test_passive_close_states(self, testbed):
        sock = testbed.client.connect(testbed.server.address, 80)
        testbed.sim.run(until=1.0)
        server_sock = testbed.server.sockets()[0]
        sock.close()
        testbed.sim.run(until=1.2)
        assert server_sock.state in (TcpState.CLOSE_WAIT, TcpState.CLOSED)
